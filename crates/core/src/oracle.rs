//! `MatchingOracle` — the LCA point-query plane.
//!
//! Answers "is edge `e` matched?" / "who is `v`'s mate?" for the
//! matching a full [`crate::Session`] run *would* produce, without ever
//! running the network: a query materializes only a ball around the
//! query vertex ([`dgraph::subgraph::SubgraphView`]), simulates the
//! algorithm there, and **certifies** which local answers are
//! bit-identical to the global run. This is the Local Computation
//! Algorithm model of Alon–Rubinfeld–Vardi–Xie / Reingold–Vardi:
//! consistent point queries over a graph far too big to solve end to
//! end, with shared randomness (the frozen per-node RNG streams) making
//! independent probes mutually consistent.
//!
//! ## Certification
//!
//! Let `C` be the ball's contamination frontier: vertices with a
//! neighbor outside the ball (all on the outermost sphere). The local
//! run diverges from the global one only at `C`, and divergence travels
//! one hop per round / one path-length per phase:
//!
//! * **Israeli–Itai** (network simulation on the ball, via
//!   [`simnet::MicroNet`] with *global* RNG stream ids): a node's state
//!   after `t` rounds is a function of initial states within distance
//!   `t`, so a node that halted in round `h` is exact iff
//!   `h < dist(node, C)` (multi-source BFS inside the ball). An empty
//!   `C` (ball = whole component) certifies every node.
//! * **Generic** (purely combinatorial — phases on the induced
//!   subgraph): MIS priorities are keyed by the global vertex sequence
//!   of each path (`generic::path_priority`), so decisions factorize
//!   over conflict-graph components. Per phase `ℓ`, vertices within
//!   `ℓ` of `C` or of previously-suspect vertices are *suspect*: any
//!   global path the ball cannot see exactly stays confined to them.
//!   Conflict components touching a suspect vertex are tainted (their
//!   vertices become suspect for later phases); all other components
//!   replay the global decisions bit-for-bit. After `k` phases every
//!   non-suspect vertex carries its exact global mate.
//!
//! Certified answers — and only those — go into an ordered memo table,
//! so answers are query-order independent *by construction*: every
//! memoized value equals the global run's value, no matter which query
//! (or probe radius) discovered it. If the query vertex itself is not
//! certified, the radius doubles and the probe re-runs; once the ball
//! swallows the component, `C` is empty and certification is total, so
//! the loop always terminates.

use crate::runner::Algorithm;
use crate::{generic, israeli_itai};
use dgraph::augmenting::enumerate_augmenting_paths;
use dgraph::subgraph::SubgraphView;
use dgraph::{EdgeId, Graph, Matching, NodeId};
use dobs::metrics::Registry;
use simnet::{MicroNet, Topology};
use std::collections::BTreeMap;

/// Builder for a [`MatchingOracle`]; start from [`MatchingOracle::on`].
pub struct OracleBuilder<'g> {
    g: &'g Graph,
    seed: u64,
    alg: Algorithm,
    initial_radius: usize,
    radius_budget: usize,
}

impl<'g> OracleBuilder<'g> {
    /// Session seed the answers must agree with (epoch 0 of a fresh
    /// `Session::on(g).seed(seed)` run). Default 0.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Algorithm whose matching is being queried. Supported:
    /// [`Algorithm::IsraeliItai`] (default) and
    /// [`Algorithm::Generic`]; `build` panics on the others.
    pub fn algorithm(mut self, alg: Algorithm) -> Self {
        self.alg = alg;
        self
    }

    /// First probe radius (doubles on every uncertified retry).
    /// Default 2.
    pub fn initial_radius(mut self, r: usize) -> Self {
        self.initial_radius = r.max(1);
        self
    }

    /// Radius cap: a probe that still cannot certify its query vertex
    /// at this radius stops doubling and swallows the whole component
    /// (which always certifies). Default: no cap — pure doubling, which
    /// reaches the component on its own.
    pub fn radius_budget(mut self, r: usize) -> Self {
        self.radius_budget = r.max(1);
        self
    }

    /// Finish the builder.
    pub fn build(self) -> MatchingOracle<'g> {
        assert!(
            matches!(self.alg, Algorithm::IsraeliItai | Algorithm::Generic { .. }),
            "MatchingOracle supports IsraeliItai and Generic, not {}",
            self.alg
        );
        if let Algorithm::Generic { k } = self.alg {
            assert!(k >= 1, "k must be positive");
        }
        MatchingOracle {
            g: self.g,
            seed: self.seed,
            alg: self.alg,
            initial_radius: self.initial_radius,
            radius_budget: self.radius_budget,
            memo: BTreeMap::new(),
            metrics: Registry::new(),
        }
    }
}

/// The LCA query plane over a borrowed graph. See the module docs for
/// the consistency contract and the certification argument.
pub struct MatchingOracle<'g> {
    g: &'g Graph,
    seed: u64,
    alg: Algorithm,
    initial_radius: usize,
    radius_budget: usize,
    /// Certified global mates: `v -> Some(mate)` or `v -> None` (free).
    /// Ordered container — part of the determinism contract (dlint).
    memo: BTreeMap<NodeId, Option<NodeId>>,
    metrics: Registry,
}

impl<'g> MatchingOracle<'g> {
    /// Start building an oracle over `g`.
    pub fn on(g: &'g Graph) -> OracleBuilder<'g> {
        OracleBuilder {
            g,
            seed: 0,
            alg: Algorithm::IsraeliItai,
            initial_radius: 2,
            radius_budget: usize::MAX,
        }
    }

    /// Is edge `e` in the global matching?
    pub fn query(&mut self, e: EdgeId) -> bool {
        self.metrics.inc("oracle_queries", 1);
        let (u, v) = self.g.endpoints(e);
        self.resolve(u) == Some(v)
    }

    /// Global mate of `v` (`None` = free in the global matching).
    pub fn query_node(&mut self, v: NodeId) -> Option<NodeId> {
        self.metrics.inc("oracle_queries", 1);
        self.resolve(v)
    }

    /// Probe/memo statistics: counters `oracle_queries`,
    /// `oracle_memo_hits`, `oracle_misses`, `oracle_balls`,
    /// `oracle_probed_nodes`; histograms `oracle_ball_radius`,
    /// `oracle_probed_per_query`; gauge `oracle_memo_size`.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Certified answer for `v`, probing outward as needed.
    fn resolve(&mut self, v: NodeId) -> Option<NodeId> {
        assert!((v as usize) < self.g.n(), "vertex out of range");
        if let Some(&mate) = self.memo.get(&v) {
            self.metrics.inc("oracle_memo_hits", 1);
            return mate;
        }
        self.metrics.inc("oracle_misses", 1);
        let mut radius = self.initial_radius;
        let mut probed_this_query = 0u64;
        loop {
            self.metrics.inc("oracle_balls", 1);
            let view = SubgraphView::ball(self.g, &[v], radius);
            self.metrics.inc("oracle_probed_nodes", view.len() as u64);
            probed_this_query += view.len() as u64;
            let certified = match self.alg {
                Algorithm::IsraeliItai => self.probe_ii(&view),
                Algorithm::Generic { k } => self.probe_generic(&view, k),
                _ => unreachable!("rejected in build"),
            };
            for (local, mate) in certified {
                let gv = view.global(local);
                let prev = self.memo.insert(gv, mate);
                debug_assert!(
                    prev.is_none_or(|p| p == mate),
                    "memo must be single-valued: vertex {gv} was {prev:?}, now {mate:?}"
                );
            }
            if let Some(&mate) = self.memo.get(&v) {
                // Cap the recorded radius at n: any radius ≥ n-1 means
                // "the whole component" (and the uncapped sentinel
                // would overflow the histogram's sum).
                self.metrics
                    .record("oracle_ball_radius", radius.min(self.g.n()) as u64);
                self.metrics
                    .record("oracle_probed_per_query", probed_this_query);
                self.metrics
                    .set_gauge("oracle_memo_size", self.memo.len() as u64);
                return mate;
            }
            // Not yet certified: grow. Past the budget, swallow the
            // component in one step (an uncapped radius ball).
            radius = if radius >= self.radius_budget {
                usize::MAX
            } else {
                radius.saturating_mul(2)
            };
        }
    }

    /// Multi-source BFS distances from `sources` (locals) inside the
    /// induced subgraph described by `edges` over `n` locals.
    /// `usize::MAX` = unreachable.
    fn local_dists(n: usize, edges: &[(NodeId, NodeId)], sources: &[usize]) -> Vec<usize> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if dist[s] == usize::MAX {
                dist[s] = 0;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &w in &adj[u] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Simulate Israeli–Itai on the ball and certify by halt round vs.
    /// distance to the contamination frontier.
    fn probe_ii(&mut self, view: &SubgraphView<'_>) -> Vec<(usize, Option<NodeId>)> {
        let n_local = view.len();
        let edges = view.local_edges();
        let topo = Topology::from_edges(n_local, &edges);
        let nodes: Vec<israeli_itai::IINode> = (0..n_local)
            .map(|l| israeli_itai::IINode::cold(topo.degree(l as NodeId)))
            .collect();
        let streams: Vec<u64> = view.vertices().iter().map(|&gv| gv as u64).collect();
        let mut micro = MicroNet::new(topo, nodes, self.seed, &streams);
        // The *global* budget: every node of the global run halts
        // within it, so certified halt rounds always fit. Exhausting it
        // locally only leaves contaminated stragglers uncertified.
        micro.run(israeli_itai::round_budget(self.g.n()));
        let boundary = view.boundary_locals();
        let dist = Self::local_dists(n_local, &edges, &boundary);
        let halt: Vec<Option<u64>> = (0..n_local).map(|l| micro.halt_round(l)).collect();
        let (states, _) = micro.into_parts();
        // Port p of local l = p-th smallest local neighbor (Graph and
        // Topology both order ports by neighbor id).
        let mut nbrs: Vec<Vec<NodeId>> = vec![Vec::new(); n_local];
        for &(a, b) in &edges {
            nbrs[a as usize].push(b);
            nbrs[b as usize].push(a);
        }
        for list in &mut nbrs {
            list.sort_unstable();
        }
        let mut certified = Vec::new();
        for (l, state) in states.iter().enumerate() {
            let exact = match halt[l] {
                // Halt round h is exact iff h < dist(l, C); dist is
                // usize::MAX (∞) when C cannot reach l — e.g. C = ∅.
                Some(h) => (h as u128) < dist[l] as u128,
                None => false,
            };
            if exact {
                let mate = state.mate_port.map(|p| view.global(nbrs[l][p] as usize));
                certified.push((l, mate));
            }
        }
        certified
    }

    /// Replay the Generic phases on the induced subgraph with
    /// globally-keyed MIS priorities, growing a suspect set instead of
    /// simulating the network (gathering does not affect the matching).
    fn probe_generic(&mut self, view: &SubgraphView<'_>, k: usize) -> Vec<(usize, Option<NodeId>)> {
        let ind = view.induced();
        let n_local = ind.n();
        let edges: Vec<(NodeId, NodeId)> = ind.edge_list().to_vec();
        let boundary = view.boundary_locals();
        let mut m = Matching::new(n_local);
        // suspect[l]: l's matched status may deviate from the global
        // run in some phase seen so far.
        let mut suspect = vec![false; n_local];
        for &b in &boundary {
            suspect[b] = true;
        }
        for phase_idx in 0..k {
            let ell = 2 * phase_idx + 1;
            let sources: Vec<usize> = (0..n_local).filter(|&l| suspect[l]).collect();
            let dist = Self::local_dists(n_local, &edges, &sources);
            let paths = enumerate_augmenting_paths(&ind, &m, ell);
            // Keys and priorities address paths by *global* vertex
            // sequences, so untainted conflict components replay the
            // global draws exactly.
            let keys: Vec<u64> = paths
                .iter()
                .map(|p| {
                    let gp: Vec<NodeId> = p.iter().map(|&l| view.global(l as usize)).collect();
                    generic::path_key(&gp)
                })
                .collect();
            let cm = generic::conflict_graph_mis(n_local, &paths, &keys, self.seed, ell);
            // Conflict components via union-find on path indices.
            let mut uf: Vec<usize> = (0..paths.len()).collect();
            fn find(uf: &mut [usize], i: usize) -> usize {
                let mut r = i;
                while uf[r] != r {
                    r = uf[r];
                }
                let mut c = i;
                while uf[c] != c {
                    let next = uf[c];
                    uf[c] = r;
                    c = next;
                }
                r
            }
            let mut vertex_path: Vec<Option<usize>> = vec![None; n_local];
            for (i, path) in paths.iter().enumerate() {
                for &v in path {
                    match vertex_path[v as usize] {
                        Some(j) => {
                            let (a, b) = (find(&mut uf, i), find(&mut uf, j));
                            if a != b {
                                uf[a] = b;
                            }
                        }
                        None => vertex_path[v as usize] = Some(i),
                    }
                }
            }
            // A component is tainted iff any of its paths touches a
            // vertex within ℓ of the suspect set: any global path the
            // ball mis-sees is confined to that margin, and a path has
            // at most ℓ edges, so taint cannot leak further.
            let mut tainted_root = vec![false; paths.len()];
            for (i, path) in paths.iter().enumerate() {
                if path.iter().any(|&v| dist[v as usize] <= ell) {
                    let r = find(&mut uf, i);
                    tainted_root[r] = true;
                }
            }
            // Apply every chosen augmentation (tainted ones too — their
            // vertices are about to be marked suspect, and the local
            // matching must stay a valid matching for later phases).
            for &i in &cm.chosen {
                m.augment_path(&ind, &paths[i]);
            }
            // Grow the suspect set: the ℓ-margin itself, plus every
            // vertex of every path in a tainted component.
            for l in 0..n_local {
                if dist[l] <= ell {
                    suspect[l] = true;
                }
            }
            for (i, path) in paths.iter().enumerate() {
                if tainted_root[find(&mut uf, i)] {
                    for &v in path {
                        suspect[v as usize] = true;
                    }
                }
            }
        }
        (0..n_local)
            .filter(|&l| !suspect[l])
            .map(|l| {
                let mate = m.mate(l as NodeId).map(|w| view.global(w as usize));
                (l, mate)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dgraph::generators::random::gnp;

    fn global_mates(g: &Graph, alg: Algorithm, seed: u64) -> Vec<Option<NodeId>> {
        let mut s = Session::on(g).algorithm(alg).seed(seed).build();
        s.run_to_completion();
        let m = s.matching().clone();
        (0..g.n() as NodeId).map(|v| m.mate(v)).collect()
    }

    #[test]
    fn ii_matches_global_session() {
        for seed in 0..4 {
            let g = gnp(48, 0.08, 100 + seed);
            let want = global_mates(&g, Algorithm::IsraeliItai, seed);
            let mut o = MatchingOracle::on(&g).seed(seed).build();
            for v in 0..g.n() as NodeId {
                assert_eq!(o.query_node(v), want[v as usize], "seed {seed} vertex {v}");
            }
        }
    }

    #[test]
    fn generic_matches_global_session() {
        for seed in 0..4 {
            let g = gnp(40, 0.09, 300 + seed);
            let alg = Algorithm::Generic { k: 2 };
            let want = global_mates(&g, alg, seed);
            let mut o = MatchingOracle::on(&g).seed(seed).algorithm(alg).build();
            for v in 0..g.n() as NodeId {
                assert_eq!(o.query_node(v), want[v as usize], "seed {seed} vertex {v}");
            }
        }
    }

    #[test]
    fn edge_queries_equal_node_queries() {
        let g = gnp(40, 0.1, 9);
        let mut o = MatchingOracle::on(&g).seed(5).build();
        for e in 0..g.m() as EdgeId {
            let (u, v) = g.endpoints(e);
            let matched = o.query(e);
            assert_eq!(matched, o.query_node(u) == Some(v));
        }
    }

    #[test]
    fn memo_hits_count_and_memo_is_stable() {
        let g = gnp(40, 0.1, 2);
        let mut o = MatchingOracle::on(&g).seed(1).build();
        let first: Vec<_> = (0..g.n() as NodeId).map(|v| o.query_node(v)).collect();
        let probed = o.metrics().counter("oracle_probed_nodes");
        let hits = o.metrics().counter("oracle_memo_hits");
        let second: Vec<_> = (0..g.n() as NodeId).map(|v| o.query_node(v)).collect();
        assert_eq!(first, second);
        assert_eq!(
            o.metrics().counter("oracle_probed_nodes"),
            probed,
            "memoized re-queries must probe nothing"
        );
        assert_eq!(o.metrics().counter("oracle_memo_hits"), hits + g.n() as u64);
    }

    #[test]
    #[should_panic(expected = "MatchingOracle supports")]
    fn rejects_unsupported_algorithms() {
        let g = gnp(10, 0.2, 1);
        let _ = MatchingOracle::on(&g)
            .algorithm(Algorithm::General {
                k: 2,
                early_stop: None,
            })
            .build();
    }
}
