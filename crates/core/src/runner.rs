//! Uniform driver: run any algorithm of the paper (or a baseline) on a
//! graph and obtain a [`RunReport`] with the matching, the network
//! statistics, and quality metrics against exact or certified bounds.

use crate::{bipartite, general, generic, israeli_itai, weighted};
use dgraph::{Graph, Matching};
use simnet::{ExecCfg, NetStats};
use std::cell::OnceCell;
use std::fmt;

/// Which algorithm to run.
///
/// `Eq`/`Hash` are deliberately **not** implemented: the `Weighted`
/// variant carries an `f64` slack, for which bitwise equality and
/// hashing are unsound (`NaN`, `-0.0`). Use [`Algorithm::name`] (or the
/// `Display` impl) when a hashable label is needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Israeli–Itai maximal matching (½-MCM baseline).
    IsraeliItai,
    /// Algorithm 1 (Theorem 3.1): generic `(1-1/(k+1))`-MCM.
    Generic { k: usize },
    /// Theorem 3.8: bipartite `(1-1/k)`-MCM with small messages.
    /// Requires `sides`.
    Bipartite { k: usize },
    /// Algorithm 4 (Theorem 3.11): general `(1-1/k)`-MCM whp.
    General { k: usize, early_stop: Option<u64> },
    /// Algorithm 5 (Theorem 4.5): `(½-ε)`-MWM.
    Weighted {
        epsilon: f64,
        mwm_box: weighted::MwmBox,
    },
    /// δ-MWM black box alone (the \[18\] substitute) — baseline for E5.
    DeltaMwm { mwm_box: weighted::MwmBox },
}

impl Algorithm {
    /// Canonical human-readable label — the single source of the names
    /// that used to be formatted ad hoc by `RunReport` construction and
    /// the `exp_e*` binaries.
    pub fn name(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::IsraeliItai => write!(f, "israeli-itai"),
            Algorithm::Generic { k } => write!(f, "generic(k={k})"),
            Algorithm::Bipartite { k } => write!(f, "bipartite(k={k})"),
            Algorithm::General { k, .. } => write!(f, "general(k={k})"),
            Algorithm::Weighted { epsilon, mwm_box } => {
                write!(f, "weighted(\u{3b5}={epsilon}, box={mwm_box:?})")
            }
            Algorithm::DeltaMwm { mwm_box } => write!(f, "delta-mwm({mwm_box:?})"),
        }
    }
}

/// How global termination checks are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TerminationMode {
    /// The simulator inspects global state for free (the paper's
    /// convention — termination detection is never charged).
    #[default]
    Oracle,
    /// Each oracle consultation is charged the measured cost of one
    /// BFS-tree convergecast + broadcast over the topology (requires a
    /// connected graph).
    Honest,
}

impl fmt::Display for TerminationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationMode::Oracle => write!(f, "oracle"),
            TerminationMode::Honest => write!(f, "honest"),
        }
    }
}

/// Result of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Human-readable algorithm label ([`Algorithm::name`]).
    pub name: String,
    /// The computed matching.
    pub matching: Matching,
    /// Accumulated network statistics.
    pub stats: NetStats,
    /// Number of "global check" consultations (counting/token loop
    /// iterations, sampling iterations, maximality consultations, …) —
    /// what Honest mode charges.
    pub oracle_checks: u64,
    /// Lazily computed exact maximum-matching size (blossom), cached so
    /// the E-experiment loops can call [`RunReport::mcm_ratio`] per
    /// data point without re-running the quadratic solver every time.
    /// Tagged with a fingerprint of the graph it was computed on.
    opt_cache: OnceCell<(GraphKey, usize)>,
}

/// Cheap structural fingerprint: `(n, m, edge-list hash)`. `(n, m)`
/// alone is not enough — degree-preserving rewiring keeps both — so
/// the tag also hashes the endpoint list (`O(m)` per check, orders of
/// magnitude below re-running blossom).
type GraphKey = (usize, usize, u64);

fn graph_key(g: &Graph) -> GraphKey {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the endpoints
    for &(u, v) in g.edge_list() {
        h = (h ^ ((u as u64) << 32 | v as u64)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (g.n(), g.m(), h)
}

impl RunReport {
    /// Assemble a report (the optimum cache starts empty).
    pub fn new(name: String, matching: Matching, stats: NetStats, oracle_checks: u64) -> Self {
        RunReport {
            name,
            matching,
            stats,
            oracle_checks,
            opt_cache: OnceCell::new(),
        }
    }

    /// Exact maximum-matching size of `g` (Edmonds blossom), computed
    /// on first use and cached for every later call on the same graph.
    pub fn mcm_opt(&self, g: &Graph) -> usize {
        let &(key, opt) = self
            .opt_cache
            .get_or_init(|| (graph_key(g), dgraph::blossom::max_matching(g).size()));
        assert!(
            key == graph_key(g),
            "mcm_opt/mcm_ratio called with a different graph than the cached optimum's"
        );
        opt
    }

    /// Cardinality ratio vs. the exact maximum (blossom; cached after
    /// the first call — see [`RunReport::mcm_opt`]).
    pub fn mcm_ratio(&self, g: &Graph) -> f64 {
        let opt = self.mcm_opt(g);
        if opt == 0 {
            1.0
        } else {
            self.matching.size() as f64 / opt as f64
        }
    }

    /// Weight ratio vs. the best available exact bound: Hungarian on
    /// bipartite inputs, bitmask DP on tiny general graphs, otherwise
    /// the certified upper bound of [`mwm_upper_bound`] (a ratio
    /// against an upper bound understates quality, never overstates).
    pub fn mwm_ratio(&self, g: &Graph, sides: Option<&[bool]>) -> f64 {
        let opt = mwm_reference(g, sides);
        if opt <= 0.0 {
            1.0
        } else {
            self.matching.weight(g) / opt
        }
    }
}

/// Exact MWM when feasible, else a certified upper bound.
pub fn mwm_reference(g: &Graph, sides: Option<&[bool]>) -> f64 {
    if let Some(sides) = sides {
        dgraph::hungarian::max_weight_matching(g, sides).weight(g)
    } else if g.n() <= dgraph::mwm_exact::MAX_EXACT_NODES {
        dgraph::mwm_exact::max_weight_exact(g)
    } else if let Some(sides) = dgraph::bipartite::two_color(g) {
        dgraph::hungarian::max_weight_matching(g, &sides).weight(g)
    } else {
        mwm_upper_bound(g)
    }
}

/// Certified upper bound on the maximum matching weight: each matched
/// edge is charged to both endpoints, so
/// `w(M*) ≤ ½ Σ_v max_{e ∋ v} w(e)`.
pub fn mwm_upper_bound(g: &Graph) -> f64 {
    let per_vertex: f64 = (0..g.n() as u32)
        .map(|v| {
            g.incident(v)
                .iter()
                .map(|&(_, e)| g.weight(e))
                .fold(0.0f64, f64::max)
        })
        .sum();
    per_vertex / 2.0
}

/// Run `alg` on `g`. `sides` must be provided for
/// [`Algorithm::Bipartite`]. In [`TerminationMode::Honest`], the
/// measured cost of one distributed convergecast is added per oracle
/// consultation (connected graphs only).
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(alg).seed(seed).termination(termination).build()\
            .run_to_completion()` (see the crate-docs migration table)"
)]
#[allow(deprecated)]
pub fn run(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    termination: TerminationMode,
) -> RunReport {
    run_cfg(g, sides, alg, seed, termination, ExecCfg::default())
}

/// [`run`] under explicit execution knobs: every network phase of the
/// chosen algorithm is stepped with `cfg.threads` workers and
/// `cfg.loss` fault injection. Results are bit-identical across thread
/// counts (asserted by the `prop_plane` workspace tests) **and**
/// bit-identical to the equivalent [`crate::session::Session`] run
/// (asserted by `tests/prop_session.rs`).
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(alg).seed(seed).termination(termination).exec(cfg)\
            .build().run_to_completion()`"
)]
#[allow(deprecated)]
pub fn run_cfg(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    termination: TerminationMode,
    cfg: ExecCfg,
) -> RunReport {
    let (matching, mut stats, oracle_checks) = match alg {
        Algorithm::IsraeliItai => {
            let (m, s) =
                israeli_itai::maximal_matching_from_cfg(g, &Matching::new(g.n()), seed, cfg);
            // Each 3-round iteration ends with a maximality consult.
            let checks = s.rounds.div_ceil(3);
            (m, s, checks)
        }
        Algorithm::Generic { k } => {
            let r = generic::run_cfg(g, k, seed, cfg);
            let checks = r.phases.iter().map(|p| p.mis_iterations).sum();
            (r.matching, r.stats, checks)
        }
        Algorithm::Bipartite { k } => {
            let sides = sides.expect("Bipartite algorithm requires sides");
            let r = bipartite::run_cfg(g, sides, k, seed, cfg);
            (r.matching, r.stats, r.iterations + k as u64)
        }
        Algorithm::General { k, early_stop } => {
            let opts = general::GeneralOpts {
                iterations: None,
                early_stop_after: early_stop,
            };
            let r = general::run_with_cfg(g, k, seed, opts, cfg);
            (r.matching, r.stats, r.iterations)
        }
        Algorithm::Weighted { epsilon, mwm_box } => {
            let r = weighted::run_cfg(g, epsilon, mwm_box, seed, cfg);
            (r.matching, r.stats, r.iterations)
        }
        Algorithm::DeltaMwm { mwm_box } => {
            let (m, s) = mwm_box.run_cfg(g, seed, cfg);
            // One global "is the box done" consult.
            (m, s, 1)
        }
    };
    if termination == TerminationMode::Honest && oracle_checks > 0 && g.n() > 0 {
        let topo = crate::state::topology_of(g);
        let (_, agg) = simnet::tree::aggregate(&topo, &vec![0u64; g.n()], simnet::tree::AggOp::Max);
        for _ in 0..oracle_checks {
            stats.absorb(&agg);
        }
    }
    RunReport::new(alg.name(), matching, stats, oracle_checks)
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};
    use dgraph::generators::weights::{apply_weights, WeightModel};

    #[test]
    fn all_algorithms_produce_valid_matchings() {
        let g = gnp(24, 0.15, 1);
        for alg in [
            Algorithm::IsraeliItai,
            Algorithm::Generic { k: 2 },
            Algorithm::General {
                k: 2,
                early_stop: Some(15),
            },
            Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: weighted::MwmBox::SeqClass,
            },
            Algorithm::DeltaMwm {
                mwm_box: weighted::MwmBox::LocalDominant,
            },
        ] {
            let r = run(&g, None, alg, 7, TerminationMode::Oracle);
            assert!(r.matching.validate(&g).is_ok(), "{}", r.name);
            assert!(r.mcm_ratio(&g) > 0.0);
        }
    }

    #[test]
    fn bipartite_through_runner() {
        let (g, sides) = bipartite_gnp(15, 15, 0.2, 2);
        let r = run(
            &g,
            Some(&sides),
            Algorithm::Bipartite { k: 3 },
            5,
            TerminationMode::Oracle,
        );
        assert!(r.mcm_ratio(&g) >= 2.0 / 3.0 - 1e-9);
    }

    #[test]
    fn honest_mode_charges_more_rounds() {
        let g = gnp(20, 0.3, 3); // dense ⇒ connected whp
        assert_eq!(g.components(), 1, "test needs a connected graph");
        let alg = Algorithm::General {
            k: 2,
            early_stop: Some(10),
        };
        let oracle = run(&g, None, alg, 9, TerminationMode::Oracle);
        let honest = run(&g, None, alg, 9, TerminationMode::Honest);
        assert!(honest.stats.rounds > oracle.stats.rounds);
        assert_eq!(honest.matching.size(), oracle.matching.size());
    }

    #[test]
    fn upper_bound_dominates_exact() {
        for seed in 0..5 {
            let g = apply_weights(&gnp(12, 0.3, seed), WeightModel::Uniform(0.1, 3.0), seed);
            let ub = mwm_upper_bound(&g);
            let exact = dgraph::mwm_exact::max_weight_exact(&g);
            assert!(ub >= exact - 1e-9, "seed {seed}: ub {ub} < exact {exact}");
        }
    }

    #[test]
    fn mwm_reference_picks_exact_for_bipartite() {
        let (g0, sides) = bipartite_gnp(20, 20, 0.2, 4);
        let g = apply_weights(&g0, WeightModel::Integer(1, 9), 5);
        // n = 40 > DP limit, but the graph is bipartite: reference must
        // be the Hungarian optimum even without explicit sides.
        let w1 = mwm_reference(&g, Some(&sides));
        let w2 = mwm_reference(&g, None);
        assert!((w1 - w2).abs() < 1e-9);
    }
}
