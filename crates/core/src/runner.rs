//! Uniform driver: run any algorithm of the paper (or a baseline) on a
//! graph and obtain a [`RunReport`] with the matching, the network
//! statistics, and quality metrics against exact or certified bounds.

use crate::{bipartite, general, generic, israeli_itai, weighted};
use dgraph::{Graph, Matching};
use simnet::{ExecCfg, NetStats};

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Israeli–Itai maximal matching (½-MCM baseline).
    IsraeliItai,
    /// Algorithm 1 (Theorem 3.1): generic `(1-1/(k+1))`-MCM.
    Generic { k: usize },
    /// Theorem 3.8: bipartite `(1-1/k)`-MCM with small messages.
    /// Requires `sides`.
    Bipartite { k: usize },
    /// Algorithm 4 (Theorem 3.11): general `(1-1/k)`-MCM whp.
    General { k: usize, early_stop: Option<u64> },
    /// Algorithm 5 (Theorem 4.5): `(½-ε)`-MWM.
    Weighted {
        epsilon: f64,
        mwm_box: weighted::MwmBox,
    },
    /// δ-MWM black box alone (the [18] substitute) — baseline for E5.
    DeltaMwm { mwm_box: weighted::MwmBox },
}

/// How global termination checks are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TerminationMode {
    /// The simulator inspects global state for free (the paper's
    /// convention — termination detection is never charged).
    #[default]
    Oracle,
    /// Each oracle consultation is charged the measured cost of one
    /// BFS-tree convergecast + broadcast over the topology (requires a
    /// connected graph).
    Honest,
}

/// Result of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Human-readable algorithm label.
    pub name: String,
    /// The computed matching.
    pub matching: Matching,
    /// Accumulated network statistics.
    pub stats: NetStats,
    /// Number of "global check" consultations (counting/token loop
    /// iterations, sampling iterations, …) — what Honest mode charges.
    pub oracle_checks: u64,
}

impl RunReport {
    /// Cardinality ratio vs. the exact maximum (blossom).
    pub fn mcm_ratio(&self, g: &Graph) -> f64 {
        let opt = dgraph::blossom::max_matching(g).size();
        if opt == 0 {
            1.0
        } else {
            self.matching.size() as f64 / opt as f64
        }
    }

    /// Weight ratio vs. the best available exact bound: Hungarian on
    /// bipartite inputs, bitmask DP on tiny general graphs, otherwise
    /// the certified upper bound of [`mwm_upper_bound`] (a ratio
    /// against an upper bound understates quality, never overstates).
    pub fn mwm_ratio(&self, g: &Graph, sides: Option<&[bool]>) -> f64 {
        let opt = mwm_reference(g, sides);
        if opt <= 0.0 {
            1.0
        } else {
            self.matching.weight(g) / opt
        }
    }
}

/// Exact MWM when feasible, else a certified upper bound.
pub fn mwm_reference(g: &Graph, sides: Option<&[bool]>) -> f64 {
    if let Some(sides) = sides {
        dgraph::hungarian::max_weight_matching(g, sides).weight(g)
    } else if g.n() <= dgraph::mwm_exact::MAX_EXACT_NODES {
        dgraph::mwm_exact::max_weight_exact(g)
    } else if let Some(sides) = dgraph::bipartite::two_color(g) {
        dgraph::hungarian::max_weight_matching(g, &sides).weight(g)
    } else {
        mwm_upper_bound(g)
    }
}

/// Certified upper bound on the maximum matching weight: each matched
/// edge is charged to both endpoints, so
/// `w(M*) ≤ ½ Σ_v max_{e ∋ v} w(e)`.
pub fn mwm_upper_bound(g: &Graph) -> f64 {
    let per_vertex: f64 = (0..g.n() as u32)
        .map(|v| {
            g.incident(v)
                .iter()
                .map(|&(_, e)| g.weight(e))
                .fold(0.0f64, f64::max)
        })
        .sum();
    per_vertex / 2.0
}

/// Run `alg` on `g`. `sides` must be provided for
/// [`Algorithm::Bipartite`]. In [`TerminationMode::Honest`], the
/// measured cost of one distributed convergecast is added per oracle
/// consultation (connected graphs only).
pub fn run(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    termination: TerminationMode,
) -> RunReport {
    run_cfg(g, sides, alg, seed, termination, ExecCfg::default())
}

/// [`run`] under explicit execution knobs: every network phase of the
/// chosen algorithm is stepped with `cfg.threads` workers and
/// `cfg.loss` fault injection. Results are bit-identical across thread
/// counts (asserted by the `prop_plane` workspace tests).
pub fn run_cfg(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    termination: TerminationMode,
    cfg: ExecCfg,
) -> RunReport {
    let (name, matching, mut stats, oracle_checks) = match alg {
        Algorithm::IsraeliItai => {
            let (m, s) = israeli_itai::maximal_matching_cfg(g, seed, cfg);
            ("israeli-itai".to_string(), m, s, 0)
        }
        Algorithm::Generic { k } => {
            let r = generic::run_cfg(g, k, seed, cfg);
            let checks = r.phases.iter().map(|p| p.mis_iterations).sum();
            (format!("generic(k={k})"), r.matching, r.stats, checks)
        }
        Algorithm::Bipartite { k } => {
            let sides = sides.expect("Bipartite algorithm requires sides");
            let r = bipartite::run_cfg(g, sides, k, seed, cfg);
            (
                format!("bipartite(k={k})"),
                r.matching,
                r.stats,
                r.iterations + k as u64,
            )
        }
        Algorithm::General { k, early_stop } => {
            let opts = general::GeneralOpts {
                iterations: None,
                early_stop_after: early_stop,
            };
            let r = general::run_with_cfg(g, k, seed, opts, cfg);
            (format!("general(k={k})"), r.matching, r.stats, r.iterations)
        }
        Algorithm::Weighted { epsilon, mwm_box } => {
            let r = weighted::run_cfg(g, epsilon, mwm_box, seed, cfg);
            (
                format!("weighted(ε={epsilon}, box={mwm_box:?})"),
                r.matching,
                r.stats,
                r.iterations,
            )
        }
        Algorithm::DeltaMwm { mwm_box } => {
            let (m, s) = mwm_box.run_cfg(g, seed, cfg);
            (format!("delta-mwm({mwm_box:?})"), m, s, 0)
        }
    };
    if termination == TerminationMode::Honest && oracle_checks > 0 && g.n() > 0 {
        let topo = crate::state::topology_of(g);
        let (_, agg) = simnet::tree::aggregate(&topo, &vec![0u64; g.n()], simnet::tree::AggOp::Max);
        for _ in 0..oracle_checks {
            stats.absorb(&agg);
        }
    }
    RunReport {
        name,
        matching,
        stats,
        oracle_checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};
    use dgraph::generators::weights::{apply_weights, WeightModel};

    #[test]
    fn all_algorithms_produce_valid_matchings() {
        let g = gnp(24, 0.15, 1);
        for alg in [
            Algorithm::IsraeliItai,
            Algorithm::Generic { k: 2 },
            Algorithm::General {
                k: 2,
                early_stop: Some(15),
            },
            Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: weighted::MwmBox::SeqClass,
            },
            Algorithm::DeltaMwm {
                mwm_box: weighted::MwmBox::LocalDominant,
            },
        ] {
            let r = run(&g, None, alg, 7, TerminationMode::Oracle);
            assert!(r.matching.validate(&g).is_ok(), "{}", r.name);
            assert!(r.mcm_ratio(&g) > 0.0);
        }
    }

    #[test]
    fn bipartite_through_runner() {
        let (g, sides) = bipartite_gnp(15, 15, 0.2, 2);
        let r = run(
            &g,
            Some(&sides),
            Algorithm::Bipartite { k: 3 },
            5,
            TerminationMode::Oracle,
        );
        assert!(r.mcm_ratio(&g) >= 2.0 / 3.0 - 1e-9);
    }

    #[test]
    fn honest_mode_charges_more_rounds() {
        let g = gnp(20, 0.3, 3); // dense ⇒ connected whp
        assert_eq!(g.components(), 1, "test needs a connected graph");
        let alg = Algorithm::General {
            k: 2,
            early_stop: Some(10),
        };
        let oracle = run(&g, None, alg, 9, TerminationMode::Oracle);
        let honest = run(&g, None, alg, 9, TerminationMode::Honest);
        assert!(honest.stats.rounds > oracle.stats.rounds);
        assert_eq!(honest.matching.size(), oracle.matching.size());
    }

    #[test]
    fn upper_bound_dominates_exact() {
        for seed in 0..5 {
            let g = apply_weights(&gnp(12, 0.3, seed), WeightModel::Uniform(0.1, 3.0), seed);
            let ub = mwm_upper_bound(&g);
            let exact = dgraph::mwm_exact::max_weight_exact(&g);
            assert!(ub >= exact - 1e-9, "seed {seed}: ub {ub} < exact {exact}");
        }
    }

    #[test]
    fn mwm_reference_picks_exact_for_bipartite() {
        let (g0, sides) = bipartite_gnp(20, 20, 0.2, 4);
        let g = apply_weights(&g0, WeightModel::Integer(1, 9), 5);
        // n = 40 > DP limit, but the graph is bipartite: reference must
        // be the Hungarian optimum even without explicit sides.
        let w1 = mwm_reference(&g, Some(&sides));
        let w2 = mwm_reference(&g, None);
        assert!((w1 - w2).abs() < 1e-9);
    }
}
