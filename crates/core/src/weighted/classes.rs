//! Class-based constant-factor MWM — our stand-in for the
//! Lotker–Patt-Shamir–Rosén `(¼-ε)`-MWM black box \[18\] that Algorithm 5
//! plugs in (the paper only needs *some* `δ`-MWM with constant
//! `δ > 0`).
//!
//! Edges are bucketed into geometric weight classes
//! `C_j = {e : w(e) ∈ (W/2^{j+1}, W/2^j]}` (`W` = max weight; classes
//! lighter than `W/n³` are dropped — they total at most `W/(2n) ≤
//! OPT/(2n)`). Classes are processed from heaviest to lightest; within
//! a class an Israeli–Itai maximal matching runs on the still-unmatched
//! endpoints.
//!
//! **Guarantee (δ = ¼ - o(1)):** every OPT edge `e` not taken is
//! blocked at an endpoint by a chosen edge `c` from an equal-or-heavier
//! class, so `w(c) ≥ w(e)/2`; each chosen edge blocks at most two OPT
//! edges, hence `w(OPT) ≤ 4·w(M) + W/(2n)`.
//!
//! **Cost:** `O(log n)` classes × `O(log n)` rounds per maximal
//! matching = `O(log² n)` rounds with `O(1)`-bit messages. The real
//! \[18\] achieves `O(log n)` by running classes concurrently; the
//! parallel variant here ([`run_parallel`]) does the same by batching
//! per-class messages (message size grows to `O(log n)` tags), which is
//! the ablation of experiment E5b.

use crate::israeli_itai;
use dgraph::{EdgeId, Graph, Matching};
use simnet::{ExecCfg, NetStats};

/// The per-class maximal-matching primitive (empty warm start). Under
/// any active fault plan the run-until-halt and symmetric-claim
/// contracts no longer hold (a dropped `Accept` leaves a one-sided
/// mate), so the class instance runs to Israeli–Itai's fixed round
/// budget and keeps the agreed pairs — the same dispatch as the session
/// driver.
fn class_maximal(g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
    let empty = Matching::new(g.n());
    if cfg.effective_faults().is_active() {
        israeli_itai::bounded_matching_from_cfg(
            g,
            &empty,
            seed,
            cfg,
            israeli_itai::round_budget(g.n()),
        )
    } else {
        israeli_itai::maximal_matching_from_cfg(g, &empty, seed, cfg)
    }
}

/// Number of retained classes for a graph on `n` nodes: weights below
/// `W/n³` cannot matter (see module docs).
pub fn class_count(n: usize) -> u32 {
    (3 * simnet::id_bits(n.max(2)) as u32).max(1)
}

/// Class index of weight `w` relative to the maximum `wmax`, or `None`
/// if the edge is dropped (zero weight or below the floor).
pub fn class_of(w: f64, wmax: f64, classes: u32) -> Option<u32> {
    if w <= 0.0 || wmax <= 0.0 {
        return None;
    }
    let j = (wmax / w).log2().floor();
    if j < 0.0 {
        Some(0) // w == wmax up to rounding
    } else if (j as u32) < classes {
        Some(j as u32)
    } else {
        None
    }
}

/// Sequential-class δ-MWM (δ = ¼ up to the dropped tail): heaviest
/// class first, Israeli–Itai maximal matching per class.
pub fn run(g: &Graph, seed: u64) -> (Matching, NetStats) {
    run_cfg(g, seed, ExecCfg::default())
}

/// [`run`] under explicit execution knobs.
pub fn run_cfg(g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
    let mut stats = NetStats::default();
    let mut m = Matching::new(g.n());
    if g.m() == 0 {
        return (m, stats);
    }
    let wmax = g.weight_list().iter().cloned().fold(0.0f64, f64::max);
    let classes = class_count(g.n());
    for j in 0..classes {
        // Edges of class j whose endpoints are still free.
        let (sub, back) = g.edge_subgraph(|e| {
            class_of(g.weight(e), wmax, classes) == Some(j) && {
                let (u, v) = g.endpoints(e);
                m.is_free(u) && m.is_free(v)
            }
        });
        if sub.m() == 0 {
            continue;
        }
        let (cm, cstats) = class_maximal(&sub, seed.wrapping_add(j as u64), cfg);
        stats.absorb(&cstats);
        for e in cm.edge_ids(&sub) {
            m.add(g, back[e as usize]);
        }
    }
    (m, stats)
}

/// Parallel-class variant: all classes run their Israeli–Itai instances
/// concurrently; conflicts between classes are resolved by keeping, at
/// every vertex, only the heaviest-class matched edge (both endpoints
/// must agree). Fewer rounds, larger (batched) messages; the measured δ
/// is compared against the sequential variant in E5b.
#[deprecated(
    since = "0.1.0",
    note = "route through `MwmBox::ParClass` (e.g. \
            `Session::on(g).algorithm(Algorithm::DeltaMwm { mwm_box: MwmBox::ParClass })`), \
            which threads the session's `ExecCfg` into every per-class network"
)]
#[allow(deprecated)]
pub fn run_parallel(g: &Graph, seed: u64) -> (Matching, NetStats) {
    run_parallel_cfg(g, seed, ExecCfg::default())
}

/// [`run_parallel`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "route through `MwmBox::ParClass` with a session/`MwmBox::run_cfg` `ExecCfg`"
)]
pub fn run_parallel_cfg(g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
    run_parallel_inner(g, seed, cfg)
}

/// The [`MwmBox::ParClass`](crate::weighted::MwmBox) implementation:
/// every per-class Israeli–Itai network runs under the *caller's*
/// [`ExecCfg`] (scheduler mode, worker threads, fault injection) — no
/// thread choice is hard-coded here, and results are bit-identical
/// across `cfg.threads` like every other entry point (asserted by
/// `tests/prop_session.rs`).
pub(crate) fn run_parallel_inner(g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
    let mut stats = NetStats::default();
    if g.m() == 0 {
        return (Matching::new(g.n()), stats);
    }
    let wmax = g.weight_list().iter().cloned().fold(0.0f64, f64::max);
    let classes = class_count(g.n());
    // Run the per-class matchings on disjoint edge sets. We execute the
    // class networks one after another *in the simulator* but charge
    // rounds as if concurrent (the max round count across classes) and
    // messages in full; per-message size gains a class tag.
    let mut per_class: Vec<Matching> = Vec::new();
    let mut max_rounds = 0u64;
    for j in 0..classes {
        let (sub, _back) = g.edge_subgraph(|e| class_of(g.weight(e), wmax, classes) == Some(j));
        if sub.m() == 0 {
            continue;
        }
        let (cm, cstats) = class_maximal(&sub, seed.wrapping_add(999 + j as u64), cfg);
        max_rounds = max_rounds.max(cstats.rounds);
        let tag_bits = simnet::id_bits(classes as usize);
        stats.record_messages(cstats.messages, 2 + tag_bits);
        per_class.push(cm);
    }
    for _ in 0..max_rounds + 2 {
        stats.record_round(0);
    }
    // Conflict resolution: per vertex keep the heaviest-class candidate
    // edge (per_class is ordered heaviest class first; node ids are
    // preserved by edge_subgraph, so mates translate directly).
    let mut keep: Vec<Option<EdgeId>> = vec![None; g.n()];
    for cm in &per_class {
        for v in 0..g.n() as u32 {
            if let Some(w) = cm.mate(v) {
                if v < w {
                    let orig = g.edge_between(v, w).expect("subgraph edge exists in g");
                    if keep[v as usize].is_none() {
                        keep[v as usize] = Some(orig);
                    }
                    if keep[w as usize].is_none() {
                        keep[w as usize] = Some(orig);
                    }
                }
            }
        }
    }
    let mut m = Matching::new(g.n());
    for v in 0..g.n() {
        if let Some(e) = keep[v] {
            let (a, b) = g.endpoints(e);
            if keep[a as usize] == Some(e) && keep[b as usize] == Some(e) && !m.contains(g, e) {
                m.add(g, e);
            }
        }
    }
    (m, stats)
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;
    use dgraph::generators::weights::{apply_weights, WeightModel};
    use dgraph::mwm_exact::max_weight_exact;

    #[test]
    fn class_of_boundaries() {
        // w = wmax → class 0; w slightly above wmax/2 → class 0;
        // w = wmax/2 → class 1 boundary (log2(2) = 1).
        assert_eq!(class_of(8.0, 8.0, 10), Some(0));
        assert_eq!(class_of(5.0, 8.0, 10), Some(0));
        assert_eq!(class_of(4.0, 8.0, 10), Some(1));
        assert_eq!(class_of(2.1, 8.0, 10), Some(1));
        assert_eq!(class_of(0.0, 8.0, 10), None);
        // Below the floor: dropped.
        assert_eq!(class_of(1e-12, 8.0, 4), None);
    }

    #[test]
    fn quarter_approximation_sequential() {
        for seed in 0..8 {
            let g = apply_weights(&gnp(14, 0.3, seed), WeightModel::Exponential(2.0), seed + 3);
            let (m, _) = run(&g, seed);
            assert!(m.validate(&g).is_ok());
            let opt = max_weight_exact(&g);
            assert!(
                m.weight(&g) >= 0.25 * opt - 1e-9,
                "seed {seed}: {} < {}/4",
                m.weight(&g),
                opt
            );
        }
    }

    #[test]
    fn parallel_variant_is_constant_factor() {
        for seed in 0..8 {
            let g = apply_weights(
                &gnp(14, 0.3, 40 + seed),
                WeightModel::PowerLaw {
                    lo: 1.0,
                    alpha: 1.2,
                },
                seed,
            );
            let (m, _) = run_parallel(&g, seed);
            assert!(m.validate(&g).is_ok());
            let opt = max_weight_exact(&g);
            // The prune step can lose another factor ~2 vs sequential.
            assert!(
                m.weight(&g) >= 0.125 * opt - 1e-9,
                "seed {seed}: {} < {}/8",
                m.weight(&g),
                opt
            );
        }
    }

    #[test]
    fn heavy_tail_prefers_heavy_edges() {
        // One huge edge must always be matched (class 0 goes first).
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.0, 1000.0, 1.0]);
        let (m, _) = run(&g, 0);
        assert!(m.contains(&g, 1));
    }

    #[test]
    fn unit_weights_collapse_to_single_class() {
        let g = gnp(20, 0.2, 5);
        let (m, _) = run(&g, 1);
        assert!(m.is_maximal(&g), "single class ⇒ plain maximal matching");
    }

    #[test]
    fn sequential_rounds_exceed_parallel_charged_rounds() {
        let g = apply_weights(
            &gnp(40, 0.15, 9),
            WeightModel::PowerLaw {
                lo: 1.0,
                alpha: 0.8,
            },
            2,
        );
        let (_, s_seq) = run(&g, 3);
        let (_, s_par) = run_parallel(&g, 3);
        assert!(
            s_par.rounds <= s_seq.rounds,
            "parallel {} vs sequential {}",
            s_par.rounds,
            s_seq.rounds
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, vec![]);
        assert_eq!(run(&g, 0).0.size(), 0);
        assert_eq!(run_parallel(&g, 0).0.size(), 0);
    }
}
