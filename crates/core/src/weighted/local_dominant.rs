//! Distributed local-dominant weighted matching (Preis \[25\] / Hoepman
//! \[11\] style): an edge joins the matching when both endpoints point at
//! it as their heaviest remaining incident edge.
//!
//! Deterministic ½-MWM. Round complexity is `O(n)` in the worst case
//! (a path with strictly increasing weights serializes completely) —
//! exactly the baseline the paper's `O(log n)`-round algorithms beat;
//! experiment E5 shows this contrast.
//!
//! One iteration spans two rounds: point, then resolve-and-announce.

use crate::state::{self, NodeInit};
use dgraph::{Graph, Matching, NodeId, UNMATCHED};
use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol};

/// Wire messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LdMsg {
    /// "You are my heaviest remaining neighbor."
    Point,
    /// "I am matched; remove this edge."
    Matched,
}

impl BitSize for LdMsg {
    fn bit_size(&self) -> u64 {
        1
    }
}

struct LdNode {
    mate_port: Option<usize>,
    active: Vec<bool>,
    weights: Vec<f64>,
    edge_ids: Vec<dgraph::EdgeId>,
    pointed: Option<usize>,
    announced: bool,
}

impl LdNode {
    fn new(init: &NodeInit) -> Self {
        LdNode {
            mate_port: init.mate_port,
            active: vec![true; init.edge_ids.len()],
            weights: init.weights.clone(),
            edge_ids: init.edge_ids.clone(),
            pointed: None,
            announced: false,
        }
    }

    /// Heaviest active port; ties broken by (globally known) edge id.
    fn best_port(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for p in 0..self.active.len() {
            if !self.active[p] {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b) => {
                    let key = (self.weights[p], std::cmp::Reverse(self.edge_ids[p]));
                    let bkey = (self.weights[b], std::cmp::Reverse(self.edge_ids[b]));
                    if key.partial_cmp(&bkey).expect("finite weights")
                        == std::cmp::Ordering::Greater
                    {
                        Some(p)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }
}

impl Protocol for LdNode {
    type Msg = LdMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, LdMsg>, inbox: Inbox<'_, LdMsg>) {
        for env in inbox.iter() {
            if *env.msg == LdMsg::Matched {
                self.active[env.port] = false;
            }
        }
        match ctx.round() % 2 {
            0 => {
                if let Some(mp) = self.mate_port {
                    if !self.announced {
                        // Warm-start or newly matched: tell the others.
                        for p in 0..ctx.degree() {
                            if p != mp {
                                ctx.send(p, LdMsg::Matched);
                            }
                        }
                        self.announced = true;
                    } else {
                        ctx.halt();
                    }
                    return;
                }
                match self.best_port() {
                    None => ctx.halt(), // all neighbors matched: locally maximal
                    Some(p) => {
                        self.pointed = Some(p);
                        ctx.send(p, LdMsg::Point);
                    }
                }
            }
            1 => {
                if self.mate_port.is_some() {
                    return;
                }
                if let Some(p) = self.pointed {
                    // Mutual pointing ⇒ the edge is locally dominant
                    // (O(1) port-indexed inbox lookup).
                    if inbox.get(p) == Some(&LdMsg::Point) {
                        self.mate_port = Some(p);
                    }
                }
                self.pointed = None;
            }
            _ => unreachable!(),
        }
    }
}

/// Deterministic round budget: `O(n)` iterations suffice (every
/// iteration matches at least one globally heaviest remaining edge).
pub fn round_budget(n: usize) -> u64 {
    2 * (2 * n as u64 + 16)
}

/// Run local-dominant matching from `initial` (empty for the classic
/// algorithm). Returns a maximal-by-weight ½-MWM.
pub fn run_from(g: &Graph, initial: &Matching, seed: u64) -> (Matching, NetStats) {
    run_from_cfg(g, initial, seed, ExecCfg::default())
}

/// [`run_from`] under explicit execution knobs.
pub fn run_from_cfg(
    g: &Graph,
    initial: &Matching,
    seed: u64,
    cfg: ExecCfg,
) -> (Matching, NetStats) {
    let inits = state::node_inits(g, initial);
    let nodes: Vec<LdNode> = inits.iter().map(LdNode::new).collect();
    let mut net = Network::new(state::topology_of(g), nodes, seed).with_cfg(cfg);
    // Any active fault plan can break the mutual-pointing handshake: a
    // dropped `Point` matches one endpoint but not the other, and a
    // dropped one-shot `Matched` announcement leaves a neighbor pointing
    // forever (so the network may never halt). Run to the fixed round
    // budget and keep only mutually-agreed pairs.
    let faulty = cfg.effective_faults().is_active();
    if faulty {
        net.run_rounds(round_budget(g.n()));
    } else {
        net.run_until_halt(round_budget(g.n()));
    }
    let (nodes, stats) = net.into_parts();
    let mates: Vec<NodeId> = nodes
        .iter()
        .enumerate()
        .map(|(v, s)| match s.mate_port {
            Some(p) => g.incident(v as NodeId)[p].0,
            None => UNMATCHED,
        })
        .collect();
    if faulty {
        (state::agreed_matching(g, &mates), stats)
    } else {
        (state::matching_from_mates(g, mates), stats)
    }
}

/// Local-dominant matching from scratch.
pub fn run(g: &Graph, seed: u64) -> (Matching, NetStats) {
    run_from(g, &Matching::new(g.n()), seed)
}

/// [`run`] under explicit execution knobs.
pub fn run_cfg(g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
    run_from_cfg(g, &Matching::new(g.n()), seed, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;
    use dgraph::generators::weights::{apply_weights, WeightModel};
    use dgraph::mwm_exact::max_weight_exact;

    #[test]
    fn half_approximation_on_random_weighted_graphs() {
        for seed in 0..8 {
            let g = apply_weights(
                &gnp(14, 0.3, seed),
                WeightModel::Uniform(0.5, 5.0),
                seed + 9,
            );
            let (m, _) = run(&g, seed);
            assert!(m.validate(&g).is_ok());
            let opt = max_weight_exact(&g);
            assert!(
                m.weight(&g) >= 0.5 * opt - 1e-9,
                "seed {seed}: {} < {}/2",
                m.weight(&g),
                opt
            );
        }
    }

    #[test]
    fn result_is_maximal() {
        for seed in 0..5 {
            let g = apply_weights(
                &gnp(20, 0.2, 50 + seed),
                WeightModel::Exponential(1.0),
                seed,
            );
            let (m, _) = run(&g, seed);
            assert!(m.is_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn takes_globally_heaviest_edge() {
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.0, 10.0, 1.0]);
        let (m, _) = run(&g, 0);
        assert!(
            m.contains(&g, 1),
            "heaviest edge is always locally dominant"
        );
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn increasing_path_serializes() {
        // Weights 1 < 2 < … : only the heaviest edge is dominant each
        // sweep; rounds grow linearly — the worst case the paper
        // escapes.
        let n = 22;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        let weights: Vec<f64> = (0..n - 1).map(|i| (i + 1) as f64).collect();
        let g = Graph::with_weights(n, edges, weights);
        let (m, stats) = run(&g, 3);
        assert!(m.validate(&g).is_ok());
        // Every second edge from the heavy end.
        assert!(m.weight(&g) >= 0.5 * max_weight_exact_for_path(&g));
        assert!(
            stats.rounds as usize >= n / 4,
            "expected near-linear rounds, got {}",
            stats.rounds
        );
    }

    fn max_weight_exact_for_path(g: &Graph) -> f64 {
        // The path is small enough for the DP oracle.
        max_weight_exact(g)
    }

    #[test]
    fn deterministic_result() {
        let g = apply_weights(&gnp(16, 0.3, 7), WeightModel::Integer(1, 50), 8);
        let (m1, _) = run(&g, 1);
        let (m2, _) = run(&g, 2); // seed-independent: algorithm is deterministic
        assert_eq!(m1, m2);
    }

    #[test]
    fn unit_weights_give_maximal_matching() {
        let g = gnp(20, 0.2, 11);
        let (m, _) = run(&g, 4);
        assert!(m.is_maximal(&g));
    }
}
