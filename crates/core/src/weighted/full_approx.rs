//! The paper's closing Remark (Section 4): *"(1-ε)-MWM can be obtained
//! in `O(ε⁻⁴ log² n)` time, using messages of linear size, by adapting
//! the PRAM algorithm of Hougardy and Vinkemeier \[14\] to the
//! distributed setting using Algorithm 2. Details are omitted."*
//!
//! We supply the details. With `k = ⌈1/ε⌉`:
//!
//! 1. enumerate all positive-gain augmentations with ≤ `k` unmatched
//!    edges — alternating paths and cycles ([`dgraph::waug`]); every
//!    node can see all augmentations through it after an Algorithm-2
//!    ball gathering of radius `2(2k+1)` (linear-size messages, exactly
//!    like Theorem 3.1);
//! 2. select a maximal vertex-disjoint subset in non-increasing gain
//!    order (emulated conflict resolution, charged `O(k)` rounds per
//!    selection wave like Lemma 3.3 charges MIS);
//! 3. apply and repeat.
//!
//! **Convergence.** Lemma 4.2 gives a disjoint collection `P` with
//! `g(P) ≥ (k+1)/(2k+1)·(k/(k+1)·w(M*) - w(M))`. In a greedy-by-gain
//! maximal set `S`, every blocked element of `P` conflicts with a
//! selected augmentation of at least its gain, and a selected
//! augmentation (≤ `3k+2` vertices) blocks at most `3k+2` disjoint
//! elements, so `g(S) ≥ g(P)/(3k+2)`. Each iteration therefore closes
//! a `Θ(1/k²)` fraction of the gap to `k/(k+1)·w(M*)`: after
//! `O(k² ln(1/δ))` iterations, `w(M) ≥ (1-δ)·k/(k+1)·w(M*)`.

use dgraph::waug::{self, Augmentation};
use dgraph::{Graph, Matching};
use simnet::NetStats;

/// Outcome of the `(1-ε)`-MWM algorithm.
#[derive(Debug)]
pub struct FullApproxRun {
    /// Final matching: `≥ (1-δ)·k/(k+1)·w(M*)`.
    pub matching: Matching,
    /// Improvement iterations executed.
    pub iterations: u64,
    /// Weight after each iteration.
    pub weights: Vec<f64>,
    /// Charged statistics (ball gathering + selection waves).
    pub stats: NetStats,
}

/// Iteration count sufficient for slack `δ` at parameter `k`
/// (see the module docs: the per-iteration contraction is
/// `(k+1) / ((2k+1)(3k+2))`).
pub fn iteration_bound(k: usize, delta: f64) -> u64 {
    assert!(k >= 1 && delta > 0.0 && delta < 1.0);
    let c = (k as f64 + 1.0) / ((2.0 * k as f64 + 1.0) * (3.0 * k as f64 + 2.0));
    ((1.0 / delta).ln() / c).ceil() as u64
}

/// Compute a `(1-ε)`-flavored MWM: with `k = ⌈1/ε⌉` and convergence
/// slack `δ`, the result has weight at least `(1-δ)·k/(k+1)·w(M*)`.
/// Stops early once no positive-gain augmentation remains (then the
/// matching is a true `k/(k+1)`-MWM by Lemma 4.2).
pub fn run(g: &Graph, k: usize, delta: f64, _seed: u64) -> FullApproxRun {
    assert!(k >= 1);
    let budget = iteration_bound(k, delta);
    let ell = 2 * k + 1; // max augmentation diameter in edges
    let id_bits = simnet::id_bits(g.n());
    let mut m = Matching::new(g.n());
    let mut stats = NetStats::default();
    let mut weights = Vec::new();
    let mut iterations = 0u64;
    for it in 0..budget {
        // The Algorithm-2 ball gathering that makes every augmentation
        // (and its conflicts) locally visible — executed with real
        // messages, exactly like Theorem 3.1's phases.
        let (_views, gstats) = crate::generic::gather_balls(g, &m, 2 * ell, _seed.wrapping_add(it));
        stats.absorb(&gstats);
        let augs = waug::enumerate_augmentations(g, &m, k);
        if augs.is_empty() {
            break;
        }
        iterations += 1;
        let chosen = waug::greedy_disjoint_by_gain(g, &augs);
        let sel: Vec<&Augmentation> = chosen.iter().map(|&i| &augs[i]).collect();
        m = waug::apply_augmentations(g, &m, &sel);
        // Selection + application wave: O(ℓ) rounds.
        for _ in 0..ell as u64 {
            stats.record_round(chosen.len() as u64);
        }
        stats.record_messages(chosen.len() as u64 * ell as u64, id_bits + 64);
        weights.push(m.weight(g));
    }
    FullApproxRun {
        matching: m,
        iterations,
        weights,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};
    use dgraph::generators::weights::{apply_weights, WeightModel};
    use dgraph::mwm_exact::max_weight_exact;

    #[test]
    fn iteration_bound_grows_with_k_and_precision() {
        assert!(iteration_bound(2, 0.1) < iteration_bound(4, 0.1));
        assert!(iteration_bound(2, 0.1) < iteration_bound(2, 0.01));
    }

    #[test]
    fn near_optimal_on_small_general_graphs() {
        for seed in 0..6 {
            let g = apply_weights(
                &gnp(12, 0.3, seed),
                WeightModel::Uniform(0.5, 4.0),
                seed + 2,
            );
            let k = 3;
            let r = run(&g, k, 0.02, seed);
            assert!(r.matching.validate(&g).is_ok());
            let opt = max_weight_exact(&g);
            let bound = 0.98 * (k as f64 / (k as f64 + 1.0));
            assert!(
                r.matching.weight(&g) >= bound * opt - 1e-9,
                "seed {seed}: {} < {bound}·{opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn beats_the_half_guarantee_of_algorithm5() {
        // The Remark's point: (1-ε) beats (½-ε). Compare on instances
        // where ½ is actually binding.
        for seed in 0..4 {
            let (g0, sides) = bipartite_gnp(8, 8, 0.4, seed);
            let g = apply_weights(&g0, WeightModel::Integer(1, 9), seed + 5);
            let opt = dgraph::hungarian::max_weight_matching(&g, &sides).weight(&g);
            let r = run(&g, 3, 0.05, seed);
            assert!(
                r.matching.weight(&g) >= 0.7 * opt - 1e-9,
                "seed {seed}: {} < 0.7·{opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn weight_is_monotone_and_halts_at_local_optimum() {
        let g = apply_weights(&gnp(14, 0.25, 9), WeightModel::Exponential(1.0), 3);
        let r = run(&g, 2, 0.1, 1);
        for w in r.weights.windows(2) {
            assert!(w[1] > w[0] - 1e-12, "gains are strictly positive");
        }
        // After the run with exhausted augmentations, no augmentation
        // with ≤ k unmatched edges remains.
        if r.iterations < iteration_bound(2, 0.1) {
            assert!(dgraph::waug::enumerate_augmentations(&g, &r.matching, 2).is_empty());
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, vec![]);
        let r = run(&g, 2, 0.1, 0);
        assert_eq!(r.matching.size(), 0);
        assert_eq!(r.iterations, 0);
    }
}
