//! Section 4: the `(½-ε)`-MWM reduction — Algorithm 5, Theorem 4.5.
//!
//! Given any black-box `δ`-MWM with constant `δ > 0`, each iteration
//!
//! 1. builds the *derived* weight function
//!    `w_M(u,v) = g(wrap(u,v))` — the gain of augmenting along the
//!    length-≤3 path `(M(u),u), (u,v), (v,M(v))` (Figure 2); edges of
//!    `M` and non-positive gains are dropped;
//! 2. runs the black box on `G' = (V, E, w_M)` to get `M'`;
//! 3. applies all wraps: `M ← M ⊕ ⋃_{e∈M'} wrap(e)` — Lemma 4.1
//!    guarantees the result is a matching of weight at least
//!    `w(M) + w_M(M')`.
//!
//! After `(3/2δ)·ln(2/ε)` iterations, `w(M) ≥ (½-ε)·w(M*)` (Lemmas
//! 4.2–4.3). The paper instantiates the box with the `(¼-ε)`-MWM of
//! \[18\] at `δ = 1/5`; we provide three substitutes (see `DESIGN.md`):
//! the sequential and parallel class algorithms ([`classes`]) and the
//! deterministic local-dominant ½-MWM ([`local_dominant`]).
//!
//! Per-iteration distributed cost: one round in which every matched
//! node announces its matched weight (so both endpoints of every edge
//! can evaluate `w_M` locally), the black box itself, and two rounds to
//! apply the wraps; all charged.

pub mod classes;
pub mod full_approx;
pub mod local_dominant;

use dgraph::{EdgeId, Graph, Matching};
use simnet::{ExecCfg, NetStats};
use std::collections::BTreeSet;

/// The δ-MWM black box plugged into Algorithm 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MwmBox {
    /// Sequential weight classes (δ = ¼): our \[18\] substitute.
    SeqClass,
    /// Concurrent weight classes: fewer rounds, bigger messages.
    ParClass,
    /// Deterministic local-dominant (δ = ½, but `O(n)` worst-case
    /// rounds) — the "slow but strong" ablation point.
    LocalDominant,
}

impl MwmBox {
    /// Nominal approximation factor δ used to size the iteration count.
    pub fn nominal_delta(self) -> f64 {
        match self {
            MwmBox::SeqClass => 0.25,
            MwmBox::ParClass => 0.125,
            MwmBox::LocalDominant => 0.5,
        }
    }

    /// Run the box on `g` (weights already derived).
    pub fn run(self, g: &Graph, seed: u64) -> (Matching, NetStats) {
        self.run_cfg(g, seed, ExecCfg::default())
    }

    /// [`MwmBox::run`] under explicit execution knobs.
    pub fn run_cfg(self, g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
        match self {
            MwmBox::SeqClass => classes::run_cfg(g, seed, cfg),
            MwmBox::ParClass => classes::run_parallel_inner(g, seed, cfg),
            MwmBox::LocalDominant => local_dominant::run_cfg(g, seed, cfg),
        }
    }
}

/// `wrap(e)` for `e = (r,s) ∉ M`: the edges `(M(r),r), (r,s), (s,M(s))`
/// that exist (Section 4, Preliminaries).
pub fn wrap(g: &Graph, m: &Matching, e: EdgeId) -> Vec<EdgeId> {
    let (r, s) = g.endpoints(e);
    debug_assert!(!m.contains(g, e), "wrap is defined for non-matching edges");
    let mut p = vec![e];
    if let Some(mr) = m.mate(r) {
        p.push(g.edge_between(r, mr).expect("matched pair is an edge"));
    }
    if let Some(ms) = m.mate(s) {
        p.push(g.edge_between(s, ms).expect("matched pair is an edge"));
    }
    p
}

/// The derived gain `w_M(u,v) = g(wrap(u,v))` for a non-matching edge,
/// `0` for matching edges (the paper's definition).
pub fn derived_weight(g: &Graph, m: &Matching, e: EdgeId) -> f64 {
    if m.contains(g, e) {
        return 0.0;
    }
    let (r, s) = g.endpoints(e);
    let mut gain = g.weight(e);
    if let Some(mr) = m.mate(r) {
        gain -= g.weight(g.edge_between(r, mr).expect("edge"));
    }
    if let Some(ms) = m.mate(s) {
        gain -= g.weight(g.edge_between(s, ms).expect("edge"));
    }
    gain
}

/// `G' = (V, E⁺, w_M)` restricted to strictly positive gains, plus the
/// back-map to original edge ids.
pub fn derived_graph(g: &Graph, m: &Matching) -> (Graph, Vec<EdgeId>) {
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    let mut back = Vec::new();
    for e in 0..g.m() as EdgeId {
        let w = derived_weight(g, m, e);
        if w > 0.0 {
            edges.push(g.endpoints(e));
            weights.push(w);
            back.push(e);
        }
    }
    (Graph::with_weights(g.n(), edges, weights), back)
}

/// Apply `M ← M ⊕ ⋃_{e∈M'} wrap(e)` (Lemma 4.1). `mprime` is given as
/// original-graph edge ids. Returns the new matching and the realized
/// gain (which Lemma 4.1 lower-bounds by `w_M(M')`).
pub fn apply_wraps(g: &Graph, m: &Matching, mprime: &[EdgeId]) -> (Matching, f64) {
    // Ordered set: `pv` feeds symmetric_difference, so its order must
    // come from edge ids, not hash state.
    let mut p: BTreeSet<EdgeId> = BTreeSet::new();
    for &e in mprime {
        for x in wrap(g, m, e) {
            p.insert(x);
        }
    }
    let pv: Vec<EdgeId> = p.into_iter().collect();
    let next = m.symmetric_difference(g, &pv);
    let gain = next.weight(g) - m.weight(g);
    (next, gain)
}

/// Paper iteration count `⌈(3/2δ)·ln(2/ε)⌉` (Line 2 of Algorithm 5).
pub fn iteration_bound(delta: f64, epsilon: f64) -> u64 {
    assert!(delta > 0.0 && epsilon > 0.0 && epsilon < 1.0);
    ((3.0 / (2.0 * delta)) * (2.0 / epsilon).ln()).ceil() as u64
}

/// Outcome of Algorithm 5.
#[derive(Debug)]
pub struct WeightedRun {
    /// Final matching: `(½-ε)`-MWM.
    pub matching: Matching,
    /// Iterations executed.
    pub iterations: u64,
    /// Weight trajectory after each iteration (for E5's convergence
    /// curve; Lemma 4.3 predicts `w(M_i) ≥ ½(1-e^{-2δi/3})·w(M*)`).
    pub weights: Vec<f64>,
    /// Accumulated statistics.
    pub stats: NetStats,
}

/// Run Algorithm 5 on weighted `g` with the chosen black box.
///
/// ```
/// use dgraph::generators::{random::gnp, weights::{apply_weights, WeightModel}};
/// let g = apply_weights(&gnp(14, 0.3, 1), WeightModel::Integer(1, 9), 2);
/// #[allow(deprecated)]
/// let r = dmatch::weighted::run(&g, 0.1, dmatch::weighted::MwmBox::SeqClass, 3);
/// let opt = dgraph::mwm_exact::max_weight_exact(&g);
/// assert!(r.matching.weight(&g) >= (0.5 - 0.1) * opt);
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Weighted { epsilon, mwm_box })`"
)]
#[allow(deprecated)]
pub fn run(g: &Graph, epsilon: f64, mwm_box: MwmBox, seed: u64) -> WeightedRun {
    run_cfg(g, epsilon, mwm_box, seed, ExecCfg::default())
}

/// One iteration of Algorithm 5 (Lines 3–5): announce matched weights,
/// run the black box on the derived graph, apply the wraps — the single
/// source of truth shared by [`run_cfg`]'s loop and the stepwise
/// `dmatch::session` driver (both must derive the per-iteration seed as
/// `seed + it·0x5EED` for bit-identity).
pub(crate) fn iteration(
    g: &Graph,
    m: &mut Matching,
    mwm_box: MwmBox,
    it: u64,
    seed: u64,
    cfg: ExecCfg,
    stats: &mut NetStats,
) {
    let id_bits = simnet::id_bits(g.n());
    // Matched nodes announce their matched weight so both endpoints
    // of every edge can evaluate w_M locally: one round, one
    // weight-sized message per edge endpoint.
    stats.record_messages(2 * g.m() as u64, 64);
    stats.record_round(2 * g.m() as u64);

    let (gp, back) = derived_graph(g, m);
    let (mp, box_stats) = mwm_box.run_cfg(&gp, seed.wrapping_add(it * 0x5EED), cfg);
    stats.absorb(&box_stats);

    let mprime: Vec<EdgeId> = mp.edge_ids(&gp).iter().map(|&e| back[e as usize]).collect();
    let wm_gain: f64 = mprime.iter().map(|&e| derived_weight(g, m, e)).sum();
    let (next, realized) = apply_wraps(g, m, &mprime);
    assert!(
        realized >= wm_gain - 1e-9,
        "Lemma 4.1 violated: realized {realized} < w_M(M') = {wm_gain}"
    );
    *m = next;
    // Wrap application: each M' endpoint tells its (old) mate to
    // release; two rounds of id-sized messages.
    stats.record_messages(2 * mprime.len() as u64, id_bits);
    stats.record_round(2 * mprime.len() as u64);
    stats.record_round(0);
}

/// [`run`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Weighted { epsilon, mwm_box }).exec(cfg)`; \
            the weight trajectory comes from the `ConvergenceCurve` observer"
)]
pub fn run_cfg(g: &Graph, epsilon: f64, mwm_box: MwmBox, seed: u64, cfg: ExecCfg) -> WeightedRun {
    let delta = mwm_box.nominal_delta();
    let iters = iteration_bound(delta, epsilon);
    let mut m = Matching::new(g.n());
    let mut stats = NetStats::default();
    let mut weights = Vec::with_capacity(iters as usize);
    for it in 0..iters {
        iteration(g, &mut m, mwm_box, it, seed, cfg, &mut stats);
        weights.push(m.weight(g));
    }
    WeightedRun {
        matching: m,
        iterations: iters,
        weights,
        stats,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};
    use dgraph::generators::weights::{apply_weights, WeightModel};
    use dgraph::mwm_exact::max_weight_exact;

    /// The worked example of Figure 2 (middle panel): verify that
    /// `w(M'') ≥ w(M) + w_M(M')` on a concrete instance.
    #[test]
    fn lemma_4_1_on_random_instances() {
        for seed in 0..8 {
            let g = apply_weights(&gnp(12, 0.3, seed), WeightModel::Integer(1, 9), seed + 5);
            // Some non-trivial starting matching (id order: weight-greedy
            // would leave no positive gains by construction).
            let m = dgraph::greedy::greedy_maximal(&g);
            let (gp, back) = derived_graph(&g, &m);
            if gp.m() == 0 {
                continue;
            }
            let mp = dgraph::greedy::greedy_by_weight(&gp);
            let mprime: Vec<EdgeId> = mp.edge_ids(&gp).iter().map(|&e| back[e as usize]).collect();
            let wm: f64 = mprime.iter().map(|&e| derived_weight(&g, &m, e)).sum();
            let (m2, realized) = apply_wraps(&g, &m, &mprime);
            assert!(
                m2.validate(&g).is_ok(),
                "seed {seed}: M'' is not a matching"
            );
            assert!(realized >= wm - 1e-9, "seed {seed}: {realized} < {wm}");
        }
    }

    #[test]
    fn derived_weights_match_definition() {
        // Path 0-1-2-3, weights 3,5,4, M = {(1,2)}.
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![3.0, 5.0, 4.0]);
        let m = Matching::from_edges(&g, &[1]);
        assert_eq!(derived_weight(&g, &m, 0), 3.0 - 5.0); // loses (1,2)
        assert_eq!(derived_weight(&g, &m, 1), 0.0); // in M
        assert_eq!(derived_weight(&g, &m, 2), 4.0 - 5.0);
        let (gp, _) = derived_graph(&g, &m);
        assert_eq!(gp.m(), 0, "no positive gains here");
    }

    #[test]
    fn wrap_contains_the_incident_matching_edges() {
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.0, 1.0, 1.0]);
        let m = Matching::from_edges(&g, &[0, 2]);
        let p = wrap(&g, &m, 1);
        assert_eq!(p.len(), 3);
        assert!(p.contains(&0) && p.contains(&1) && p.contains(&2));
    }

    #[test]
    fn half_minus_eps_on_small_general_graphs() {
        let eps = 0.1;
        for seed in 0..6 {
            let g = apply_weights(
                &gnp(14, 0.3, seed),
                WeightModel::Uniform(0.5, 4.0),
                seed + 1,
            );
            let r = run(&g, eps, MwmBox::SeqClass, seed);
            assert!(r.matching.validate(&g).is_ok());
            let opt = max_weight_exact(&g);
            assert!(
                r.matching.weight(&g) >= (0.5 - eps) * opt - 1e-9,
                "seed {seed}: {} < (½-ε)·{opt}",
                r.matching.weight(&g)
            );
        }
    }

    #[test]
    fn half_minus_eps_on_bipartite_with_all_boxes() {
        let eps = 0.15;
        for &mwm_box in &[MwmBox::SeqClass, MwmBox::ParClass, MwmBox::LocalDominant] {
            for seed in 0..4 {
                let (g0, sides) = bipartite_gnp(10, 10, 0.3, seed);
                let g = apply_weights(&g0, WeightModel::Exponential(2.0), seed + 7);
                let r = run(&g, eps, mwm_box, seed);
                let opt = dgraph::hungarian::max_weight_matching(&g, &sides).weight(&g);
                assert!(
                    r.matching.weight(&g) >= (0.5 - eps) * opt - 1e-9,
                    "{mwm_box:?} seed {seed}: {} < (½-ε)·{opt}",
                    r.matching.weight(&g)
                );
            }
        }
    }

    #[test]
    fn weight_trajectory_is_monotone() {
        let g = apply_weights(&gnp(20, 0.2, 3), WeightModel::Integer(1, 20), 4);
        let r = run(&g, 0.1, MwmBox::SeqClass, 8);
        for w in r.weights.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "weight decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn iteration_bound_matches_formula() {
        // δ = 1/5, ε = 0.1: (3/0.4)·ln 20 = 7.5 · 2.9957 ≈ 22.47 → 23.
        assert_eq!(iteration_bound(0.2, 0.1), 23);
        assert!(iteration_bound(0.25, 0.05) > iteration_bound(0.25, 0.2));
    }

    #[test]
    fn empty_graph_and_single_edge() {
        let g = Graph::new(2, vec![]);
        let r = run(&g, 0.1, MwmBox::SeqClass, 0);
        assert_eq!(r.matching.size(), 0);
        let g = Graph::with_weights(2, vec![(0, 1)], vec![7.0]);
        let r = run(&g, 0.1, MwmBox::SeqClass, 0);
        assert_eq!(r.matching.weight(&g), 7.0);
    }
}
