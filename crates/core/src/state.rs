//! Shared node-state plumbing for all protocols.
//!
//! Protocols run in *phases*: each phase constructs a fresh
//! [`simnet::Network`] whose node states are built from the graph and
//! the current matching, runs to completion, and hands the (possibly
//! updated) matching plus accumulated statistics to the next phase.
//! This mirrors how the paper composes its algorithms (Algorithm 1
//! iterates phases; Algorithm 4 calls `Aug` per sampling iteration;
//! Algorithm 5 calls a δ-MWM black box per iteration).

use dgraph::{EdgeId, Graph, Matching, NodeId, UNMATCHED};
use simnet::Topology;

/// Convert a [`Graph`] into a [`Topology`] (the communication graph is
/// the input graph itself, as in the paper's model).
pub fn topology_of(g: &Graph) -> Topology {
    Topology::from_edges(g.n(), g.edge_list())
}

/// Static per-node inputs every protocol needs: the incident edge ids,
/// their weights, and (port-indexed) everything required to act without
/// touching global state.
#[derive(Debug, Clone)]
pub struct NodeInit {
    /// This node's id.
    pub id: NodeId,
    /// `edge_ids[p]` is the edge id on port `p` (ports are sorted by
    /// neighbor id, matching both `Graph::incident` and
    /// `Topology::neighbors` order).
    pub edge_ids: Vec<EdgeId>,
    /// `weights[p]` is the weight of the edge on port `p`.
    pub weights: Vec<f64>,
    /// Port to this node's mate, or `None` when free.
    pub mate_port: Option<usize>,
}

/// Build the per-node inputs for all nodes under matching `m`.
pub fn node_inits(g: &Graph, m: &Matching) -> Vec<NodeInit> {
    (0..g.n() as NodeId)
        .map(|v| {
            let inc = g.incident(v);
            let mate = m.mate(v);
            let mate_port = mate.map(|mv| {
                inc.binary_search_by_key(&mv, |&(nb, _)| nb)
                    .expect("mate must be a neighbor")
            });
            NodeInit {
                id: v,
                edge_ids: inc.iter().map(|&(_, e)| e).collect(),
                weights: inc.iter().map(|&(_, e)| g.weight(e)).collect(),
                mate_port,
            }
        })
        .collect()
}

/// Extract the matching from per-node mate reports, validating
/// symmetry. `mates[v]` is what node `v` believes its mate is.
pub fn matching_from_mates(g: &Graph, mates: Vec<NodeId>) -> Matching {
    let m = Matching::from_mates(mates);
    debug_assert!(
        m.validate(g).is_ok(),
        "protocol produced an invalid matching"
    );
    m
}

/// Helper for protocols that track mates as ports: convert a port-based
/// mate report into node ids.
pub fn mates_from_ports(g: &Graph, mate_ports: &[Option<usize>]) -> Vec<NodeId> {
    mate_ports
        .iter()
        .enumerate()
        .map(|(v, &mp)| match mp {
            Some(p) => g.incident(v as NodeId)[p].0,
            None => UNMATCHED,
        })
        .collect()
}

/// Build a matching from possibly *inconsistent* mate claims (e.g.
/// after fault injection): only pairs in which both endpoints claim
/// each other are kept. Always yields a valid matching.
pub fn agreed_matching(g: &Graph, claims: &[NodeId]) -> Matching {
    let mut mates = vec![UNMATCHED; g.n()];
    for v in 0..g.n() {
        let c = claims[v];
        if c != UNMATCHED
            && (c as usize) < g.n()
            && claims[c as usize] == v as NodeId
            && g.edge_between(v as NodeId, c).is_some()
        {
            mates[v] = c;
        }
    }
    Matching::from_mates(mates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::structured::path;

    #[test]
    fn topology_matches_graph() {
        let g = path(6);
        let t = topology_of(&g);
        assert_eq!(t.len(), 6);
        assert_eq!(t.num_edges(), 5);
        for v in 0..6u32 {
            let nbrs: Vec<NodeId> = g.incident(v).iter().map(|&(u, _)| u).collect();
            assert_eq!(t.neighbors(v), &nbrs[..]);
        }
    }

    #[test]
    fn node_inits_align_ports() {
        let g = path(4);
        let m = Matching::from_edges(&g, &[1]); // edge (1,2)
        let inits = node_inits(&g, &m);
        assert_eq!(inits[0].mate_port, None);
        // Node 1 neighbors sorted: [0, 2]; mate 2 is port 1.
        assert_eq!(inits[1].mate_port, Some(1));
        assert_eq!(inits[2].mate_port, Some(0));
        assert_eq!(inits[1].edge_ids.len(), 2);
    }

    #[test]
    fn roundtrip_mates() {
        let g = path(4);
        let m = Matching::from_edges(&g, &[0, 2]);
        let ports: Vec<Option<usize>> = (0..4u32)
            .map(|v| {
                m.mate(v).map(|mv| {
                    g.incident(v)
                        .binary_search_by_key(&mv, |&(nb, _)| nb)
                        .unwrap()
                })
            })
            .collect();
        let mates = mates_from_ports(&g, &ports);
        let m2 = matching_from_mates(&g, mates);
        assert_eq!(m, m2);
    }
}
