//! # Paper ↔ code map
//!
//! Line-by-line correspondence between the paper's pseudocode and this
//! crate. This module contains no code — it is the navigation aid for
//! readers holding the PDF.
//!
//! ## Algorithm 1 (abstract phase loop) → [`crate::generic::run`]
//!
//! | Line | Paper | Code |
//! |---|---|---|
//! | 1 | `M ← ∅` | `Matching::new(g.n())` |
//! | 2 | `k ← ⌈1/ε⌉` | caller picks `k` |
//! | 3 | `for ℓ ← 1,3,…,2k-1` | the phase loop |
//! | 4 | construct `C_M(ℓ)` | `dgraph::augmenting::enumerate_augmenting_paths` over the gathered views |
//! | 5 | MIS of `C_M(ℓ)` | `conflict_graph_mis` (Luby process, charged per Lemma 3.3) |
//! | 6–7 | `M ← M ⊕ P` | `Matching::augment_path` per chosen path |
//!
//! ## Algorithm 2 (view gathering) → `generic::gather_balls`
//!
//! | Step | Paper | Code |
//! |---|---|---|
//! | 1 | send distance-(i-1) neighborhood each round | `GatherNode::on_round` (delta flooding, `Arc`-shared payloads) |
//! | 2 | `P_v(ℓ)`, `P_v(2ℓ)` | implicit in the enumeration over views |
//! | 3 | `leader(P)` = smaller-id endpoint | canonical path direction in the enumerator |
//! | 4 | leaders announce paths | charged in the MIS token accounting |
//!
//! ## Algorithm 3 (counting BFS) → [`crate::bipartite::count`]
//!
//! | Line | Paper | Code |
//! |---|---|---|
//! | 1 | `c_v[i] ← 0` | `CountNode::counts` |
//! | 2–4 | free X sends `1`, halts | round 0 arm of `on_round` |
//! | 5 | wait for first message (`d(v)`) | `dist: Option<u64>` set once |
//! | 6–7 | record counts, `n_v ← Σ c_v[i]` | the inbox fold |
//! | 8–10 | X forwards `n_v` to all neighbors | `(Role::X, Some(mate))` arm (mate excluded; it was the sender) |
//! | 11–13 | matched Y forwards to its mate | `(Role::Y, Some(mate))` arm |
//! | — | unmatched Y records (endpoint) | `(Role::Y, None)` arm; becomes a token-pass *leader* |
//!
//! ## Token MIS (Section 3.2 prose) → [`crate::bipartite::token`]
//!
//! | Paper | Code |
//! |---|---|
//! | leader draws `w_y ∈ [1, N⁴]` | 64-bit priority + leader-id tiebreak |
//! | next edge sampled with prob `c_y[i]/n_y` | `TokenNode::sample_port` |
//! | X follows its matching edge | `(Role::X, Some(mp))` arm |
//! | tokens meet ⇒ max survives | `best` fold over `TokMsg::Token` arrivals |
//! | arrival only at a single round | staggered launch `ℓ - d(y)`, asserted |
//! | trace back & augment | `TokMsg::Flip` retrace |
//! | chunked pipelining (Lemma 3.7) | *not simulated*; values charged their exact bits (see DESIGN.md) |
//!
//! ## Algorithm 4 (red/blue sampling) → [`crate::general::run_with`]
//!
//! | Line | Paper | Code |
//! |---|---|---|
//! | 2 | `2^{2k+1}(k+1) ln k` iterations | [`crate::general::iteration_bound`] |
//! | 3 | random coloring | per-iteration bit draw + 1-bit exchange charge |
//! | 4 | `Ĝ = (V̂, Ê)` | [`crate::bipartite::SubgraphSpec::from_coloring`] |
//! | 5 | `Aug(Ĝ, M, 2k-1)` | [`crate::bipartite::aug_until_maximal`] |
//! | 6 | `M ← M ⊕ P` | inside the token pass flips |
//!
//! ## Algorithm 5 (weighted reduction) → [`crate::weighted::run`]
//!
//! | Line | Paper | Code |
//! |---|---|---|
//! | 2 | `(3/2δ)·ln(2/ε)` iterations | [`crate::weighted::iteration_bound`] |
//! | 3 | `G' ← (V, E, w_M)` | [`crate::weighted::derived_graph`] |
//! | 4 | `M' ← δ-MWM(G')` | [`crate::weighted::MwmBox::run`] |
//! | 5 | `M ← M ⊕ ⋃ wrap(e)` | [`crate::weighted::apply_wraps`] |
//!
//! ## Supporting lemmas
//!
//! | Lemma | Where it is *checked* |
//! |---|---|
//! | 3.4 (shortest length grows) | `tests/prop_matching.rs::lemma_3_4_shortest_length_grows` |
//! | 3.5 (length ⇒ ratio) | `tests/prop_matching.rs::lemma_3_5_quality_from_path_length` |
//! | 3.6 (count = #paths ≤ Δ^⌈d/2⌉) | `bipartite::count` tests + E2 |
//! | 4.1 (wrap soundness) | `weighted` tests, E6, `tests/figures.rs` |
//! | 4.2 (short augmentations exist) | `dgraph::waug` tests (`exhausted_augmentations_imply_near_optimality`) |
//! | 4.3 (convergence) | E5a's prediction column |
