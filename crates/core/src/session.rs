//! # The unified `Session` driver
//!
//! One builder-first surface for every algorithm of the paper, replacing
//! the `run` / `run_cfg` / `run_from` / `run_phased` / `run_with` matrix
//! of free functions that used to multiply with every new knob:
//!
//! ```
//! use dgraph::generators::random::gnp;
//! use dmatch::session::Session;
//! use dmatch::{Algorithm, TerminationMode};
//! use simnet::ExecCfg;
//!
//! let g = gnp(60, 0.1, 1);
//! let report = Session::on(&g)
//!     .algorithm(Algorithm::Generic { k: 3 })
//!     .seed(42)
//!     .exec(ExecCfg::sequential())
//!     .termination(TerminationMode::Honest)
//!     .build()
//!     .run_to_completion();
//! assert!(report.matching.validate(&g).is_ok());
//! assert!(report.mcm_ratio(&g) >= 0.75 - 1e-9);
//! ```
//!
//! A [`Session`] owns its graph and matching and advances in **phases**
//! — the algorithm-specific unit of progress the paper's analyses are
//! written in (a `ℓ`-phase of Algorithm 1, one `Aug` phase of
//! Theorem 3.8, one sampling iteration of Algorithm 4, one black-box
//! iteration of Algorithm 5, one full Israeli–Itai run). This is
//! exactly the probe/step/observe cost interface of the LCA line of
//! work the experiments benchmark against. Between phases the run can
//! be inspected without being consumed ([`Session::snapshot`]), and an
//! [`Observer`] receives a callback per simulated round and per phase.
//!
//! Completed sessions of the *incremental* algorithms
//! (`Algorithm::IsraeliItai`, `Algorithm::Generic`) can absorb a churn
//! batch and repair in place: [`Session::resume_after_rewire`] swaps in
//! the post-churn graph, drops destroyed matching edges, and — for the
//! generic algorithm — restricts all gathering traffic to the damage
//! ball `B(damage, 4k+2)`, exactly like the dynamic engine's epoch
//! repair. `dchurn::DynEngine` drives its generic arm through this
//! path.
//!
//! Every legacy free function is now a thin `#[deprecated]` shim over
//! the same per-phase primitives; `tests/prop_session.rs` asserts shim
//! and session runs are bit-identical (matching *and* the full
//! `NetStats` trace, including every per-round row).

use crate::runner::{Algorithm, RunReport, TerminationMode};
use crate::weighted::MwmBox;
use crate::{bipartite, general, generic, israeli_itai, weighted};
use dgraph::{Graph, Matching, NodeId, UNMATCHED};
use simnet::{ExecCfg, NetStats, RoundTrace, SplitMix64};
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Observer plane
// ---------------------------------------------------------------------

/// Verdict an [`Observer`] callback returns: keep going, or abort the
/// session at the end of the current phase (phases are atomic — an
/// abort can never leave a half-applied augmentation behind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Continue the run.
    Continue,
    /// Stop after the current phase; [`Session::step`] then reports
    /// [`Phase::Aborted`] and the session keeps its partial result.
    Abort,
}

/// One simulated (or charged) round, as seen by an observer.
#[derive(Debug)]
pub struct RoundEvent<'a> {
    /// Global round index within the session (0-based).
    pub round: u64,
    /// Nodes actually stepped this round (the sparse scheduler's cost).
    pub active: u64,
    /// The full per-round statistics row.
    pub trace: &'a RoundTrace,
}

/// Edges that entered / left the matching during one phase.
#[derive(Debug, Clone, Default)]
pub struct MatchingDelta {
    /// Pairs newly matched this phase (endpoints, lower id first).
    pub added: Vec<(NodeId, NodeId)>,
    /// Pairs unmatched this phase (endpoints, lower id first).
    pub removed: Vec<(NodeId, NodeId)>,
}

impl MatchingDelta {
    /// Diff two matchings over the same vertex universe.
    pub fn between(before: &Matching, after: &Matching) -> Self {
        let n = after.mates().len();
        debug_assert_eq!(
            before.mates().len(),
            n,
            "matchings over different universes"
        );
        let mut delta = MatchingDelta::default();
        for v in 0..n as NodeId {
            if let Some(w) = after.mate(v) {
                if v < w && before.mate(v) != Some(w) {
                    delta.added.push((v, w));
                }
            }
            if let Some(w) = before.mate(v) {
                if v < w && after.mate(v) != Some(w) {
                    delta.removed.push((v, w));
                }
            }
        }
        delta
    }

    /// No change at all?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A completed phase, as seen by an observer.
#[derive(Debug)]
pub struct PhaseEvent<'a> {
    /// The phase that just ran.
    pub phase: &'a PhaseInfo,
    /// The session's graph (current epoch).
    pub graph: &'a Graph,
    /// The matching after the phase.
    pub matching: &'a Matching,
    /// Matched-edge changes of this phase.
    pub delta: &'a MatchingDelta,
    /// Cumulative statistics after the phase.
    pub stats: &'a NetStats,
}

/// Per-round / per-phase callbacks into a running [`Session`].
///
/// Round events carry the [`RoundTrace`] row (messages, active count,
/// plane gauges); phase events carry the matching, its delta, and the
/// cumulative [`NetStats`]. Either callback may return
/// [`Control::Abort`] to stop the session at the next phase boundary.
pub trait Observer {
    /// Called once per simulated or charged round, in order.
    fn on_round(&mut self, _ev: &RoundEvent<'_>) -> Control {
        Control::Continue
    }

    /// Called at every phase boundary.
    fn on_phase(&mut self, _ev: &PhaseEvent<'_>) -> Control {
        Control::Continue
    }
}

/// The do-nothing observer (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// One point of a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Cumulative rounds when the point was taken.
    pub round: u64,
    /// Matching cardinality at that point.
    pub matching_size: usize,
    /// Matching weight at that point (equals the cardinality on
    /// unweighted graphs).
    pub weight: f64,
}

/// Records the matching size / weight after every phase — the
/// ratio-vs-round series the E-experiments plot. The handle is shared:
/// clone it, hand one clone to [`SessionBuilder::observe`], and read
/// [`ConvergenceCurve::points`] from the other whenever you like
/// (mid-run included).
#[derive(Debug, Clone, Default)]
pub struct ConvergenceCurve {
    inner: Rc<RefCell<Vec<CurvePoint>>>,
}

impl ConvergenceCurve {
    /// New, empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// The points recorded so far.
    pub fn points(&self) -> Vec<CurvePoint> {
        self.inner.borrow().clone()
    }
}

impl Observer for ConvergenceCurve {
    fn on_phase(&mut self, ev: &PhaseEvent<'_>) -> Control {
        self.inner.borrow_mut().push(CurvePoint {
            round: ev.stats.rounds,
            matching_size: ev.matching.size(),
            weight: ev.matching.weight(ev.graph),
        });
        Control::Continue
    }
}

/// Aborts the session once the cumulative round count exceeds a cap
/// (at the next phase boundary — phases are atomic). The partial
/// matching and statistics stay available on the session.
#[derive(Debug, Clone, Copy)]
pub struct RoundBudget {
    cap: u64,
}

impl RoundBudget {
    /// Abort once more than `cap` rounds have been consumed.
    pub fn new(cap: u64) -> Self {
        RoundBudget { cap }
    }
}

impl Observer for RoundBudget {
    fn on_round(&mut self, ev: &RoundEvent<'_>) -> Control {
        if ev.round >= self.cap {
            Control::Abort
        } else {
            Control::Continue
        }
    }
}

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

/// What one [`Session::step`] call did.
#[derive(Debug)]
pub enum Phase {
    /// A phase ran; here is its log entry.
    Ran(PhaseInfo),
    /// The algorithm has completed (idempotent).
    Done,
    /// An observer aborted the run (idempotent).
    Aborted,
}

/// Log entry of one phase (the algorithm-specific unit of progress).
#[derive(Debug, Clone)]
pub struct PhaseInfo {
    /// 0-based sequence number within the session (epochs continue the
    /// numbering).
    pub index: usize,
    /// Human-readable phase label.
    pub label: String,
    /// Augmenting-path length `ℓ` for phase-structured algorithms, 0
    /// where the notion does not apply.
    pub ell: usize,
    /// Augmenting paths applied (phase-structured algorithms) / net
    /// edges gained (Israeli–Itai, Weighted, DeltaMwm) during the phase.
    pub applied: u64,
    /// Inner iterations consumed (MIS iterations, count+token loops,
    /// Israeli–Itai iterations, …).
    pub iterations: u64,
    /// Rounds consumed by this phase.
    pub rounds: u64,
    /// Matching cardinality after the phase.
    pub matching_size: usize,
}

/// Mid-run view of a session: the current matching and cumulative
/// statistics, cloned out without consuming or disturbing the run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Matching after the last completed phase.
    pub matching: Matching,
    /// Cumulative statistics.
    pub stats: NetStats,
    /// Phases completed so far (all epochs).
    pub phases_done: usize,
    /// Oracle consultations so far.
    pub oracle_checks: u64,
}

/// A churn batch handed to [`Session::resume_after_rewire`]: the
/// post-churn graph (same vertex universe) plus the vertices whose
/// incident structure changed (endpoints of inserted edges and of
/// destroyed matched edges).
#[derive(Debug, Clone)]
pub struct RewirePatch {
    /// The new communication graph.
    pub graph: Graph,
    /// Damage set (deduplicated not required; order irrelevant).
    pub damage: Vec<NodeId>,
}

impl RewirePatch {
    /// Bundle a post-churn graph with its damage set.
    pub fn new(graph: Graph, damage: Vec<NodeId>) -> Self {
        RewirePatch { graph, damage }
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Builder for a [`Session`]; start from [`Session::on`].
pub struct SessionBuilder<'a> {
    g: &'a Graph,
    sides: Option<&'a [bool]>,
    alg: Algorithm,
    seed: u64,
    cfg: ExecCfg,
    termination: TerminationMode,
    warm: Option<&'a Matching>,
    observers: Vec<Box<dyn Observer>>,
    sampling_iterations: Option<u64>,
    round_limit: Option<u64>,
}

impl<'a> SessionBuilder<'a> {
    /// Which algorithm to run (default: [`Algorithm::IsraeliItai`]).
    pub fn algorithm(mut self, alg: Algorithm) -> Self {
        self.alg = alg;
        self
    }

    /// Bipartition for [`Algorithm::Bipartite`] (`false` = X side).
    pub fn sides(mut self, sides: &'a [bool]) -> Self {
        self.sides = Some(sides);
        self
    }

    /// Master RNG seed (default 0). Identical seeds give bit-identical
    /// runs regardless of [`ExecCfg::threads`] / scheduler mode.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Execution knobs: worker threads, fault injection, scheduler.
    pub fn exec(mut self, cfg: ExecCfg) -> Self {
        self.cfg = cfg;
        self
    }

    /// Run every simulated round through the adversary plane under
    /// `plan` (drops, delays, stalls, crashes, CONGEST budgets — see
    /// `simnet::adversary`). Equivalent to setting [`ExecCfg::faults`]
    /// on the config passed to [`SessionBuilder::exec`]; call this
    /// *after* `exec` or the config overwrite discards the plan. Same
    /// seed + same plan ⇒ bit-identical runs at any thread count.
    pub fn adversary(mut self, plan: simnet::FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Cap the simulation at exactly `rounds` rounds and extract the
    /// *agreed* matching (pairs in which both endpoints claim each
    /// other) instead of running to quiescence. Only meaningful for
    /// [`Algorithm::IsraeliItai`], whose fixed-budget lossy regime the
    /// old `lossy_matching` helper exposed; `build` panics for other
    /// algorithms.
    pub fn round_limit(mut self, rounds: u64) -> Self {
        self.round_limit = Some(rounds);
        self
    }

    /// How termination detection is charged (default: Oracle).
    pub fn termination(mut self, termination: TerminationMode) -> Self {
        self.termination = termination;
        self
    }

    /// Start from `initial` instead of the empty matching. Supported by
    /// the incremental algorithms ([`Algorithm::IsraeliItai`],
    /// [`Algorithm::Generic`]); `build` panics for the others, whose
    /// analyses assume a cold start.
    pub fn warm_start(mut self, initial: &'a Matching) -> Self {
        self.warm = Some(initial);
        self
    }

    /// Attach an observer (may be called repeatedly; all observers see
    /// every event).
    pub fn observe(mut self, obs: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(obs));
        self
    }

    /// Explicit sampling budget for [`Algorithm::General`] (replaces
    /// the paper's `⌈2^{2k+1}(k+1) ln k⌉` default); panics on other
    /// algorithms.
    pub fn sampling_iterations(mut self, iterations: u64) -> Self {
        self.sampling_iterations = Some(iterations);
        self
    }

    /// Validate the configuration and construct the [`Session`]
    /// (cloning the graph and warm start into it).
    ///
    /// # Panics
    ///
    /// On invalid combinations: `Bipartite` without `sides`, a warm
    /// start for a non-incremental algorithm, `sampling_iterations` for
    /// a non-`General` algorithm, `k == 0`, or an invalid warm-start
    /// matching.
    pub fn build(self) -> Session {
        let g = self.g.clone();
        if let Some(m) = self.warm {
            assert!(
                matches!(self.alg, Algorithm::IsraeliItai | Algorithm::Generic { .. }),
                "warm_start is supported by the incremental algorithms \
                 (IsraeliItai, Generic); {} runs from a cold start",
                self.alg
            );
            assert!(
                m.validate(&g).is_ok(),
                "warm start must be a valid matching"
            );
        }
        assert!(
            self.sampling_iterations.is_none() || matches!(self.alg, Algorithm::General { .. }),
            "sampling_iterations only applies to Algorithm::General"
        );
        assert!(
            self.round_limit.is_none() || matches!(self.alg, Algorithm::IsraeliItai),
            "round_limit only applies to Algorithm::IsraeliItai"
        );
        let m = self.warm.cloned().unwrap_or_else(|| Matching::new(g.n()));
        let driver = match self.alg {
            Algorithm::IsraeliItai => Driver::IsraeliItai { done: false },
            Algorithm::Generic { k } => {
                assert!(k >= 1, "k must be positive");
                Driver::Generic {
                    k,
                    region: None,
                    next: 0,
                }
            }
            Algorithm::Bipartite { k } => {
                assert!(k >= 1, "k must be positive");
                let sides = self.sides.expect("Bipartite algorithm requires sides");
                Driver::Bipartite {
                    k,
                    spec: bipartite::SubgraphSpec::full_bipartite(&g, sides),
                    next: 0,
                }
            }
            Algorithm::General { k, early_stop } => {
                assert!(k >= 1, "k must be positive");
                Driver::General {
                    ell: 2 * k - 1,
                    rng: general::color_rng(self.seed),
                    budget: self
                        .sampling_iterations
                        .unwrap_or_else(|| general::iteration_bound(k)),
                    early_stop,
                    it: 0,
                    idle_streak: 0,
                    stopped: false,
                }
            }
            Algorithm::Weighted { epsilon, mwm_box } => Driver::Weighted {
                mwm_box,
                iters: weighted::iteration_bound(mwm_box.nominal_delta(), epsilon),
                it: 0,
            },
            Algorithm::DeltaMwm { mwm_box } => Driver::DeltaMwm {
                mwm_box,
                done: false,
            },
        };
        Session {
            g,
            alg: self.alg,
            seed: self.seed,
            cfg: self.cfg,
            termination: self.termination,
            round_limit: self.round_limit,
            observers: self.observers,
            driver,
            m,
            stats: NetStats::default(),
            oracle_checks: 0,
            honest_charged: 0,
            finish_bumped: false,
            rounds_dispatched: 0,
            phases: Vec::new(),
            status: Status::Running,
            epoch: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    Done,
    Aborted,
}

/// Per-algorithm phase cursor. Every arm replays the exact loop (and
/// seed derivations) of the corresponding legacy entry point, via the
/// shared per-phase primitives of the algorithm modules.
enum Driver {
    IsraeliItai {
        done: bool,
    },
    Generic {
        k: usize,
        /// Gathering region (damage ball) for repair epochs; `None` on
        /// the initial run.
        region: Option<Vec<bool>>,
        next: usize,
    },
    Bipartite {
        k: usize,
        spec: bipartite::SubgraphSpec,
        next: usize,
    },
    General {
        ell: usize,
        rng: SplitMix64,
        budget: u64,
        early_stop: Option<u64>,
        it: u64,
        idle_streak: u64,
        stopped: bool,
    },
    Weighted {
        mwm_box: MwmBox,
        iters: u64,
        it: u64,
    },
    DeltaMwm {
        mwm_box: MwmBox,
        done: bool,
    },
}

/// The unified driver: owns the graph, the matching, the statistics,
/// and the observer plane; see the [module docs](self) for the tour.
pub struct Session {
    g: Graph,
    alg: Algorithm,
    seed: u64,
    cfg: ExecCfg,
    termination: TerminationMode,
    round_limit: Option<u64>,
    observers: Vec<Box<dyn Observer>>,
    driver: Driver,
    m: Matching,
    stats: NetStats,
    oracle_checks: u64,
    /// Oracle consultations already surcharged under Honest mode (so a
    /// resumed epoch only charges its fresh consultations).
    honest_charged: u64,
    /// Whether the Bipartite completion bump (`+k` schedule consults)
    /// has been applied.
    finish_bumped: bool,
    /// `per_round` rows already delivered to observers.
    rounds_dispatched: usize,
    phases: Vec<PhaseInfo>,
    status: Status,
    /// Rewire epochs absorbed so far; epoch `e` derives its seeds as
    /// `seed + e` (matching the dynamic engine's convention).
    epoch: u64,
}

impl Session {
    /// Start building a session over `g` (the graph is cloned into the
    /// session at `build`; the paper's communication graph is the input
    /// graph itself).
    pub fn on(g: &Graph) -> SessionBuilder<'_> {
        SessionBuilder {
            g,
            sides: None,
            alg: Algorithm::IsraeliItai,
            seed: 0,
            cfg: ExecCfg::default(),
            termination: TerminationMode::default(),
            warm: None,
            observers: Vec::new(),
            sampling_iterations: None,
            round_limit: None,
        }
    }

    /// The algorithm this session runs.
    pub fn algorithm(&self) -> Algorithm {
        self.alg
    }

    /// The session's current graph (post-churn after a rewire).
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The current matching (valid after every phase).
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// Cumulative statistics across all phases and epochs.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Oracle consultations so far.
    pub fn oracle_checks(&self) -> u64 {
        self.oracle_checks
    }

    /// Log of every completed phase (all epochs).
    pub fn phase_log(&self) -> &[PhaseInfo] {
        &self.phases
    }

    /// Rewire epochs absorbed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Has the current epoch's run completed?
    pub fn is_done(&self) -> bool {
        self.status == Status::Done
    }

    /// Did an observer abort the run?
    pub fn is_aborted(&self) -> bool {
        self.status == Status::Aborted
    }

    /// Clone out the mid-run state without consuming the session.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            matching: self.m.clone(),
            stats: self.stats.clone(),
            phases_done: self.phases.len(),
            oracle_checks: self.oracle_checks,
        }
    }

    /// Advance the session by one phase. Idempotent once the run is
    /// [`Phase::Done`] or [`Phase::Aborted`].
    pub fn step(&mut self) -> Phase {
        match self.status {
            Status::Done => return Phase::Done,
            Status::Aborted => return Phase::Aborted,
            Status::Running => {}
        }
        let epoch_seed = self.seed.wrapping_add(self.epoch);
        // The pre-phase matching is only needed for observer deltas —
        // don't pay the O(n) clone on observer-less sessions (the
        // dynamic engine steps thousands of repair phases with none).
        let before_m = if self.observers.is_empty() {
            None
        } else {
            Some(self.m.clone())
        };
        let before_size = self.m.size();
        let before_rounds = self.stats.rounds;
        let info = match &mut self.driver {
            Driver::IsraeliItai { done } => {
                if *done {
                    None
                } else {
                    // Any active fault plan (even pure drop: a lost
                    // Accept leaves a one-sided mate claim) invalidates
                    // run-until-halt termination and symmetric-claim
                    // extraction; run a bounded window and keep the
                    // agreed pairs instead. Fault-free runs stay on the
                    // legacy path and are bit-identical to before.
                    let plan = self.cfg.effective_faults();
                    let (m, s) = if self.round_limit.is_some() || plan.is_active() {
                        let rounds = self
                            .round_limit
                            .unwrap_or_else(|| israeli_itai::round_budget(self.g.n()));
                        israeli_itai::bounded_matching_from_cfg(
                            &self.g, &self.m, epoch_seed, self.cfg, rounds,
                        )
                    } else {
                        israeli_itai::maximal_matching_from_cfg(
                            &self.g, &self.m, epoch_seed, self.cfg,
                        )
                    };
                    // Each 3-round iteration ends with a maximality
                    // consult.
                    self.oracle_checks += s.rounds.div_ceil(3);
                    let iterations = s.rounds.div_ceil(3);
                    self.m = m;
                    self.stats.absorb(&s);
                    *done = true;
                    Some(PhaseInfo {
                        index: 0,
                        label: "maximal-matching".into(),
                        ell: 1,
                        applied: self.m.size().saturating_sub(before_size) as u64,
                        iterations,
                        rounds: 0,
                        matching_size: 0,
                    })
                }
            }
            Driver::Generic { k, region, next } => {
                if *next >= *k || self.g.n() == 0 {
                    None
                } else {
                    let log = generic::phase_step(
                        &self.g,
                        &mut self.m,
                        *next,
                        epoch_seed,
                        self.cfg,
                        region.as_deref(),
                        &mut self.stats,
                    );
                    *next += 1;
                    self.oracle_checks += log.mis_iterations;
                    Some(PhaseInfo {
                        index: 0,
                        label: format!("augment \u{2113}={}", log.ell),
                        ell: log.ell,
                        applied: log.applied as u64,
                        iterations: log.mis_iterations,
                        rounds: 0,
                        matching_size: 0,
                    })
                }
            }
            Driver::Bipartite { k, spec, next } => {
                if *next >= *k {
                    None
                } else {
                    let ell = 2 * *next + 1;
                    let out = bipartite::aug_until_maximal_cfg(
                        &self.g,
                        &self.m,
                        spec,
                        ell,
                        epoch_seed.wrapping_add(0x1000 * ell as u64),
                        self.cfg,
                    );
                    *next += 1;
                    self.m = out.matching;
                    self.stats.absorb(&out.stats);
                    self.oracle_checks += out.iterations;
                    Some(PhaseInfo {
                        index: 0,
                        label: format!("aug \u{2113}={ell}"),
                        ell,
                        applied: out.applied as u64,
                        iterations: out.iterations,
                        rounds: 0,
                        matching_size: 0,
                    })
                }
            }
            Driver::General {
                ell,
                rng,
                budget,
                early_stop,
                it,
                idle_streak,
                stopped,
            } => {
                if *stopped || *it >= *budget {
                    None
                } else {
                    let applied = general::sample_iteration(
                        &self.g,
                        &mut self.m,
                        *ell,
                        *it,
                        epoch_seed,
                        self.cfg,
                        rng,
                        &mut self.stats,
                    );
                    *it += 1;
                    self.oracle_checks += 1;
                    if applied == 0 {
                        *idle_streak += 1;
                        if early_stop.is_some_and(|s| *idle_streak >= s) {
                            *stopped = true;
                        }
                    } else {
                        *idle_streak = 0;
                    }
                    Some(PhaseInfo {
                        index: 0,
                        label: format!("sample {}", *it - 1),
                        ell: *ell,
                        applied: applied as u64,
                        iterations: 1,
                        rounds: 0,
                        matching_size: 0,
                    })
                }
            }
            Driver::Weighted { mwm_box, iters, it } => {
                if *it >= *iters {
                    None
                } else {
                    weighted::iteration(
                        &self.g,
                        &mut self.m,
                        *mwm_box,
                        *it,
                        epoch_seed,
                        self.cfg,
                        &mut self.stats,
                    );
                    *it += 1;
                    self.oracle_checks += 1;
                    Some(PhaseInfo {
                        index: 0,
                        label: format!("box iteration {}", *it - 1),
                        ell: 0,
                        applied: self.m.size().saturating_sub(before_size) as u64,
                        iterations: 1,
                        rounds: 0,
                        matching_size: 0,
                    })
                }
            }
            Driver::DeltaMwm { mwm_box, done } => {
                if *done {
                    None
                } else {
                    let (m, s) = mwm_box.run_cfg(&self.g, epoch_seed, self.cfg);
                    self.m = m;
                    self.stats.absorb(&s);
                    // One global "is the box done" consult.
                    self.oracle_checks += 1;
                    *done = true;
                    Some(PhaseInfo {
                        index: 0,
                        label: "\u{3b4}-box".into(),
                        ell: 0,
                        applied: self.m.size().saturating_sub(before_size) as u64,
                        iterations: 1,
                        rounds: 0,
                        matching_size: 0,
                    })
                }
            }
        };
        match info {
            None => {
                self.finish_epoch();
                self.status = Status::Done;
                Phase::Done
            }
            Some(mut info) => {
                info.index = self.phases.len();
                info.rounds = self.stats.rounds - before_rounds;
                info.matching_size = self.m.size();
                let abort = self.emit_phase_events(&info, before_m.as_ref());
                if dobs::plane::enabled() {
                    dobs::plane::record(dobs::Event::Phase {
                        t_ns: dobs::plane::now_ns(),
                        index: info.index as u32,
                        label: dobs::Name::new(&info.label),
                        rounds: self.stats.rounds,
                        matching: info.matching_size as u64,
                        aborted: abort,
                    });
                }
                self.phases.push(info.clone());
                if abort {
                    self.status = Status::Aborted;
                    Phase::Aborted
                } else {
                    Phase::Ran(info)
                }
            }
        }
    }

    /// Step until the epoch completes (or an observer aborts) and
    /// return the [`RunReport`] — bit-identical, shims included, to the
    /// legacy `runner::run_cfg` for the same configuration.
    pub fn run_to_completion(&mut self) -> RunReport {
        while let Phase::Ran(_) = self.step() {}
        self.report()
    }

    /// The report for the work done so far (clones the matching and
    /// statistics; the session remains usable, e.g. for
    /// [`Session::resume_after_rewire`]).
    pub fn report(&self) -> RunReport {
        RunReport::new(
            self.alg.name(),
            self.m.clone(),
            self.stats.clone(),
            self.oracle_checks,
        )
    }

    /// Absorb a churn batch into a *completed* session and re-arm it to
    /// repair the matching on the post-churn graph: matched edges that
    /// no longer exist are dropped (their endpoints must be in
    /// `patch.damage`), and the next [`Session::step`] /
    /// [`Session::run_to_completion`] runs the repair epoch. Epoch `e`
    /// derives its seeds as `seed + e`.
    ///
    /// Supported by the incremental algorithms: `IsraeliItai`
    /// (warm-started re-run — the surviving matching never regresses)
    /// and `Generic { k }` (damage-local repair: all gathering traffic
    /// stays inside `B(damage, 4k+2)`, the invariant the dynamic-engine
    /// experiments measure). Panics for the cold-start algorithms.
    pub fn resume_after_rewire(&mut self, patch: RewirePatch) {
        assert!(
            self.status == Status::Done,
            "resume_after_rewire requires a completed epoch (status: {:?})",
            self.status
        );
        assert_eq!(
            patch.graph.n(),
            self.g.n(),
            "rewire must preserve the vertex universe (node churn uses a fixed universe)"
        );
        self.g = patch.graph;
        // Drop matched pairs whose edge the churn destroyed.
        let mates: Vec<NodeId> = (0..self.g.n() as NodeId)
            .map(|v| match self.m.mate(v) {
                Some(w) if self.g.edge_between(v, w).is_some() => w,
                _ => UNMATCHED,
            })
            .collect();
        self.m = Matching::from_mates(mates);
        debug_assert!(self.m.validate(&self.g).is_ok());
        self.epoch += 1;
        match &mut self.driver {
            Driver::IsraeliItai { done } => *done = false,
            Driver::Generic { k, region, next } => {
                if patch.damage.is_empty() {
                    // No damage ⇒ the previous guarantee still holds
                    // and the repair is free.
                    *region = None;
                    *next = *k;
                } else {
                    // Normalize before anything derived from the damage
                    // set: a duplicated hub must not seed the BFS (or
                    // the `center_edges` gauge) once per incident edge.
                    let damage = generic::normalize_damage(&patch.damage);
                    let radius = 4 * *k + 2;
                    let ball = generic::ball(&self.g, &damage, radius);
                    if dobs::plane::enabled() {
                        // The LCA-style locality probe: how big a region
                        // did this damage set force the repair to read?
                        dobs::plane::record(dobs::Event::RepairBall {
                            t_ns: dobs::plane::now_ns(),
                            center_edges: damage.len() as u64,
                            radius: radius as u64,
                            ball: ball.iter().filter(|&&b| b).count() as u64,
                        });
                    }
                    *region = Some(ball);
                    *next = 0;
                }
            }
            _ => panic!(
                "resume_after_rewire is supported by the incremental algorithms \
                 (IsraeliItai, Generic); {} runs from a cold start",
                self.alg
            ),
        }
        self.status = Status::Running;
    }

    /// End-of-epoch bookkeeping: the Bipartite schedule bump and the
    /// Honest-mode termination surcharge for this epoch's fresh oracle
    /// consultations.
    fn finish_epoch(&mut self) {
        if let Algorithm::Bipartite { k } = self.alg {
            if !self.finish_bumped {
                // The phase schedule itself consults the oracle once
                // per phase (matching the legacy accounting).
                self.oracle_checks += k as u64;
                self.finish_bumped = true;
            }
        }
        if self.termination == TerminationMode::Honest && self.g.n() > 0 {
            let fresh = self.oracle_checks - self.honest_charged;
            if fresh > 0 {
                let topo = crate::state::topology_of(&self.g);
                let (_, agg) = simnet::tree::aggregate(
                    &topo,
                    &vec![0u64; self.g.n()],
                    simnet::tree::AggOp::Max,
                );
                for _ in 0..fresh {
                    self.stats.absorb(&agg);
                }
                self.honest_charged = self.oracle_checks;
            }
        }
        // Charged rounds (Honest convergecasts) still reach observers.
        self.emit_round_events();
    }

    /// Deliver pending round events; true if any observer aborted.
    fn emit_round_events(&mut self) -> bool {
        if self.observers.is_empty() {
            self.rounds_dispatched = self.stats.per_round.len();
            return false;
        }
        let mut observers = std::mem::take(&mut self.observers);
        let mut abort = false;
        for idx in self.rounds_dispatched..self.stats.per_round.len() {
            let trace = &self.stats.per_round[idx];
            let ev = RoundEvent {
                round: idx as u64,
                active: trace.active,
                trace,
            };
            for obs in &mut observers {
                if obs.on_round(&ev) == Control::Abort {
                    abort = true;
                }
            }
        }
        self.rounds_dispatched = self.stats.per_round.len();
        self.observers = observers;
        abort
    }

    /// Deliver this phase's round events plus the phase event; true if
    /// any observer aborted.
    fn emit_phase_events(&mut self, info: &PhaseInfo, before: Option<&Matching>) -> bool {
        let mut abort = self.emit_round_events();
        if self.observers.is_empty() {
            return abort;
        }
        let delta = match before {
            Some(before) => MatchingDelta::between(before, &self.m),
            None => MatchingDelta::default(),
        };
        let mut observers = std::mem::take(&mut self.observers);
        let ev = PhaseEvent {
            phase: info,
            graph: &self.g,
            matching: &self.m,
            delta: &delta,
            stats: &self.stats,
        };
        for obs in &mut observers {
            if obs.on_phase(&ev) == Control::Abort {
                abort = true;
            }
        }
        self.observers = observers;
        abort
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};

    #[test]
    fn builder_defaults_run_israeli_itai() {
        let g = gnp(30, 0.1, 1);
        let r = Session::on(&g).seed(7).build().run_to_completion();
        assert_eq!(r.name, "israeli-itai");
        assert!(r.matching.is_maximal(&g));
        assert!(r.oracle_checks > 0);
    }

    #[test]
    fn stepwise_equals_one_shot() {
        let g = gnp(24, 0.15, 2);
        let mut stepwise = Session::on(&g)
            .algorithm(Algorithm::Generic { k: 3 })
            .seed(9)
            .build();
        let mut phases = 0;
        while let Phase::Ran(_) = stepwise.step() {
            phases += 1;
        }
        assert_eq!(phases, 3);
        let one_shot = Session::on(&g)
            .algorithm(Algorithm::Generic { k: 3 })
            .seed(9)
            .build()
            .run_to_completion();
        assert_eq!(stepwise.matching(), &one_shot.matching);
        assert_eq!(stepwise.stats(), &one_shot.stats);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let g = gnp(24, 0.15, 3);
        let mut s = Session::on(&g)
            .algorithm(Algorithm::Generic { k: 2 })
            .seed(4)
            .build();
        s.step();
        let snap = s.snapshot();
        assert_eq!(snap.phases_done, 1);
        let r = s.run_to_completion();
        assert!(r.matching.size() >= snap.matching.size());
    }

    #[test]
    fn convergence_curve_records_phases() {
        let g = gnp(30, 0.12, 5);
        let curve = ConvergenceCurve::new();
        let mut s = Session::on(&g)
            .algorithm(Algorithm::Generic { k: 3 })
            .seed(11)
            .observe(curve.clone())
            .build();
        s.run_to_completion();
        let pts = curve.points();
        assert_eq!(pts.len(), 3);
        assert!(pts
            .windows(2)
            .all(|w| w[0].matching_size <= w[1].matching_size));
    }

    #[test]
    fn round_budget_aborts() {
        let g = gnp(40, 0.2, 6);
        let mut s = Session::on(&g)
            .algorithm(Algorithm::Generic { k: 3 })
            .seed(1)
            .observe(RoundBudget::new(1))
            .build();
        let r = s.run_to_completion();
        assert!(s.is_aborted());
        assert!(s.phase_log().len() < 3, "abort must cut the schedule short");
        assert!(r.matching.validate(&g).is_ok());
    }

    #[test]
    fn bipartite_requires_sides() {
        let (g, sides) = bipartite_gnp(8, 8, 0.3, 1);
        let r = Session::on(&g)
            .algorithm(Algorithm::Bipartite { k: 2 })
            .sides(&sides)
            .seed(3)
            .build()
            .run_to_completion();
        assert!(r.matching.validate(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "requires sides")]
    fn bipartite_without_sides_panics() {
        let g = gnp(8, 0.3, 1);
        let _ = Session::on(&g)
            .algorithm(Algorithm::Bipartite { k: 2 })
            .build();
    }

    #[test]
    #[should_panic(expected = "warm_start is supported")]
    fn warm_start_rejected_for_cold_algorithms() {
        let g = gnp(8, 0.3, 1);
        let m = Matching::new(g.n());
        let _ = Session::on(&g)
            .algorithm(Algorithm::General {
                k: 2,
                early_stop: None,
            })
            .warm_start(&m)
            .build();
    }

    #[test]
    fn rewire_repairs_with_generic() {
        use dgraph::augmenting::has_augmenting_path_within;
        let g = gnp(40, 0.08, 9);
        let k = 2;
        let mut s = Session::on(&g)
            .algorithm(Algorithm::Generic { k })
            .seed(5)
            .build();
        s.run_to_completion();
        // Remove one matched edge.
        let e = s.matching().edge_ids(&g)[0];
        let (a, b) = g.endpoints(e);
        let (g2, _) = g.edge_subgraph(|x| x != e);
        s.resume_after_rewire(RewirePatch::new(g2.clone(), vec![a, b]));
        let r = s.run_to_completion();
        assert!(r.matching.validate(&g2).is_ok());
        assert!(!has_augmenting_path_within(&g2, &r.matching, 2 * k - 1));
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn rewire_normalizes_duplicated_damage() {
        // A hub that lost several edges shows up once per endpoint dump
        // in `RewirePatch::damage`. The duplicated list must produce
        // the same repair (matching + stats) as the deduped one, and
        // the RepairBall gauge must report the *deduped* center count.
        let g = gnp(40, 0.08, 9);
        let k = 2;
        let run = |damage: Vec<NodeId>| {
            let mut s = Session::on(&g)
                .algorithm(Algorithm::Generic { k })
                .seed(5)
                .build();
            s.run_to_completion();
            let e = s.matching().edge_ids(&g)[0];
            let (g2, _) = g.edge_subgraph(|x| x != e);
            let session = dobs::plane::TraceSession::start(64);
            s.resume_after_rewire(RewirePatch::new(g2.clone(), damage));
            let rec = session.finish();
            let center = rec
                .events()
                .find_map(|ev| match ev {
                    dobs::Event::RepairBall { center_edges, .. } => Some(*center_edges),
                    _ => None,
                })
                .expect("repair must record a RepairBall event");
            let r = s.run_to_completion();
            (r.matching, s.stats().clone(), center)
        };
        let e0 = {
            let mut s = Session::on(&g)
                .algorithm(Algorithm::Generic { k })
                .seed(5)
                .build();
            s.run_to_completion();
            s.matching().edge_ids(&g)[0]
        };
        let (a, b) = g.endpoints(e0);
        let (m_dup, stats_dup, center_dup) = run(vec![b, a, a, b, a]);
        let (m_clean, stats_clean, center_clean) = run(vec![a, b]);
        assert_eq!(m_dup, m_clean);
        assert_eq!(stats_dup, stats_clean);
        assert_eq!(center_clean, 2);
        assert_eq!(center_dup, 2, "duplicates must not inflate the gauge");
    }

    #[test]
    fn rewire_with_no_damage_is_free() {
        let g = gnp(20, 0.15, 3);
        let mut s = Session::on(&g)
            .algorithm(Algorithm::Generic { k: 2 })
            .seed(1)
            .build();
        let before = s.run_to_completion();
        let rounds0 = s.stats().rounds;
        s.resume_after_rewire(RewirePatch::new(g.clone(), vec![]));
        let after = s.run_to_completion();
        assert_eq!(before.matching, after.matching);
        assert_eq!(s.stats().rounds, rounds0, "no damage ⇒ free epoch");
    }

    #[test]
    fn matching_delta_diffs_pairs() {
        let g = dgraph::generators::structured::path(4);
        let before = Matching::from_edges(&g, &[1]);
        let mut after = Matching::new(4);
        after.add(&g, 0);
        after.add(&g, 2);
        let d = MatchingDelta::between(&before, &after);
        assert_eq!(d.added, vec![(0, 1), (2, 3)]);
        assert_eq!(d.removed, vec![(1, 2)]);
        assert!(!d.is_empty());
    }
}
