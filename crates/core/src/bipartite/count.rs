//! Algorithm 3: counting augmenting paths by a layered BFS (Figure 1).
//!
//! All free X nodes flood `1` simultaneously; every node records, on
//! first arrival only, the per-port counts of shortest half-augmenting
//! paths reaching it (Lemma 3.6: the count is exact and bounded by
//! `Δ^⌈d/2⌉`). Matched Y nodes forward the sum to their mate; matched X
//! nodes forward to their non-mate neighbors; free Y nodes record and
//! stop — they are the path endpoints ("leaders") of the token pass.
//!
//! This implementation natively supports the paper's "length at most ℓ"
//! variant (needed by Algorithm 4): a free Y node reached at any round
//! `d ≤ ℓ` becomes a leader with its own distance.
//!
//! Counts are carried as `u128` and **charged their actual significant
//! bits** (`O(ℓ log Δ)`, per Lemma 3.6); the paper pipelines them in
//! `O(log Δ)`-bit chunks (Lemma 3.7), which changes round constants but
//! not message *volume* — see EXPERIMENTS.md E10.

use super::{Role, SubgraphSpec};
use crate::state;
use dgraph::{Graph, Matching, NodeId};
use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol};

/// A path-count message.
#[derive(Debug, Clone, Copy)]
pub struct CountMsg(pub u128);

impl BitSize for CountMsg {
    fn bit_size(&self) -> u64 {
        // Significant bits of the count plus a small header.
        4 + (128 - self.0.leading_zeros() as u64).max(1)
    }
}

/// Per-node result of a counting pass.
#[derive(Debug, Clone)]
pub struct CountPass {
    /// `dist[v]` = round of first arrival (the `d(v)` of Lemma 3.6).
    pub dist: Vec<Option<u64>>,
    /// `counts[v][p]` = number of shortest half-augmenting paths
    /// arriving at `v` on port `p`.
    pub counts: Vec<Vec<u128>>,
    /// `total[v]` = `n_v` of Algorithm 3.
    pub total: Vec<u128>,
    /// Number of reached free Y nodes (token-pass leaders).
    pub leaders: usize,
    /// Network statistics of the pass.
    pub stats: NetStats,
}

struct CountNode {
    role: Role,
    mate_port: Option<usize>,
    active: Vec<bool>,
    ell: u64,
    dist: Option<u64>,
    counts: Vec<u128>,
    total: u128,
}

impl Protocol for CountNode {
    type Msg = CountMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, CountMsg>, inbox: Inbox<'_, CountMsg>) {
        let r = ctx.round();
        if self.role == Role::Out {
            return;
        }
        if r == 0 {
            // Free X nodes start the BFS.
            if self.role == Role::X && self.mate_port.is_none() {
                self.dist = Some(0);
                for p in 0..ctx.degree() {
                    if self.active[p] {
                        ctx.send(p, CountMsg(1));
                    }
                }
            }
            return;
        }
        if self.dist.is_some() {
            return; // visited: later messages are discarded (Algorithm 3)
        }
        let mut got = false;
        for env in inbox.iter() {
            if self.active[env.port] {
                self.counts[env.port] = self.counts[env.port].saturating_add(env.msg.0);
                self.total = self.total.saturating_add(env.msg.0);
                got = true;
            }
        }
        if !got {
            return;
        }
        self.dist = Some(r);
        let forward_useful = r < self.ell;
        match (self.role, self.mate_port) {
            (Role::Y, Some(mp)) => {
                // Matched Y: forward the sum to the mate only.
                if forward_useful && self.active[mp] {
                    ctx.send(mp, CountMsg(self.total));
                }
            }
            (Role::Y, None) => {
                // Free Y: a path endpoint; record and stop.
            }
            (Role::X, Some(mp)) => {
                // Matched X (the message came from its mate): forward to
                // every other active neighbor.
                debug_assert!(inbox.iter().all(|e| e.port == mp || !self.active[e.port]));
                if forward_useful {
                    for p in 0..ctx.degree() {
                        if p != mp && self.active[p] {
                            ctx.send(p, CountMsg(self.total));
                        }
                    }
                }
            }
            (Role::X, None) => {
                // Free X nodes never receive: Y sends only to its mate.
                unreachable!("free X node received a count message");
            }
            (Role::Out, _) => unreachable!(),
        }
    }
}

/// Execute one counting pass of `ell + 1` rounds on the subgraph.
pub fn run(g: &Graph, m: &Matching, spec: &SubgraphSpec, ell: usize, seed: u64) -> CountPass {
    run_cfg(g, m, spec, ell, seed, ExecCfg::default())
}

/// [`run`] under explicit execution knobs.
pub fn run_cfg(
    g: &Graph,
    m: &Matching,
    spec: &SubgraphSpec,
    ell: usize,
    seed: u64,
    cfg: ExecCfg,
) -> CountPass {
    let mate_ports = super::mate_ports(g, m);
    let nodes: Vec<CountNode> = (0..g.n() as NodeId)
        .map(|v| CountNode {
            role: spec.role[v as usize],
            mate_port: mate_ports[v as usize],
            active: spec.active_ports(g, v),
            ell: ell as u64,
            dist: None,
            counts: vec![0; g.degree(v)],
            total: 0,
        })
        .collect();
    let mut net = Network::new(state::topology_of(g), nodes, seed).with_cfg(cfg);
    net.run_rounds(ell as u64 + 1);
    let (nodes, stats) = net.into_parts();
    let mut leaders = 0usize;
    for n in &nodes {
        if n.role == Role::Y && n.mate_port.is_none() && n.dist.is_some() {
            leaders += 1;
        }
    }
    // Free X sources carry dist 0 but are not leaders.
    CountPass {
        dist: nodes.iter().map(|n| n.dist).collect(),
        counts: nodes.iter().map(|n| n.counts.clone()).collect(),
        total: nodes.iter().map(|n| n.total).collect(),
        leaders,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::structured::{complete_bipartite, path};

    fn full_spec(g: &Graph) -> (SubgraphSpec, Vec<bool>) {
        let sides = dgraph::bipartite::two_color(g).unwrap();
        (SubgraphSpec::full_bipartite(g, &sides), sides)
    }

    #[test]
    fn empty_matching_counts_length_one_paths() {
        let (g, sides) = complete_bipartite(3, 4);
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::new(g.n());
        let pass = run(&g, &m, &spec, 1, 0);
        assert_eq!(pass.leaders, 4, "every free Y is reached at distance 1");
        for y in 3..7u32 {
            assert_eq!(pass.dist[y as usize], Some(1));
            assert_eq!(
                pass.total[y as usize], 3,
                "three free X sources reach each Y"
            );
        }
    }

    #[test]
    fn path_graph_distance_three() {
        // 0-1-2-3 with (1,2) matched: unique augmenting path of length 3.
        let g = path(4);
        let (spec, sides) = full_spec(&g);
        let m = Matching::from_edges(&g, &[1]);
        let pass = run(&g, &m, &spec, 3, 0);
        // Node 0 and node 2 are X (sides come from 2-coloring of path:
        // 0,2 on one side, 1,3 on the other).
        let _ = sides;
        assert_eq!(pass.leaders, 1);
        assert_eq!(pass.dist[3], Some(3));
        assert_eq!(pass.total[3], 1);
        assert_eq!(pass.dist[1], Some(1));
        assert_eq!(pass.dist[2], Some(2));
    }

    #[test]
    fn ell_bound_cuts_long_paths() {
        let g = path(6); // 0-1-2-3-4-5, matched (1,2),(3,4): one length-5 path
        let (spec, _) = full_spec(&g);
        let m = Matching::from_edges(&g, &[1, 3]);
        let short = run(&g, &m, &spec, 3, 0);
        assert_eq!(short.leaders, 0, "no augmenting path of length ≤ 3");
        let long = run(&g, &m, &spec, 5, 0);
        assert_eq!(long.leaders, 1);
        assert_eq!(long.dist[5], Some(5));
    }

    #[test]
    fn counts_match_lemma_3_6_bound() {
        let (g, sides) = complete_bipartite(4, 4);
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::new(g.n());
        let pass = run(&g, &m, &spec, 1, 0);
        let delta = g.max_degree() as u128;
        for v in 0..g.n() {
            if let Some(d) = pass.dist[v] {
                if d > 0 {
                    let bound = delta.pow(d.div_ceil(2) as u32);
                    assert!(pass.total[v] <= bound, "n_v > Δ^⌈d/2⌉ at {v}");
                }
            }
        }
    }

    #[test]
    fn counts_agree_with_exhaustive_enumeration() {
        use dgraph::augmenting::enumerate_augmenting_paths;
        use dgraph::generators::random::bipartite_gnp;
        for seed in 0..6 {
            let (g, sides) = bipartite_gnp(6, 6, 0.4, seed);
            let spec = SubgraphSpec::full_bipartite(&g, &sides);
            // Build some matching via greedy to have interesting paths.
            let m = dgraph::greedy::greedy_maximal(&g);
            // Shortest augmenting length, if any.
            let sl = dgraph::augmenting::shortest_augmenting_path_len_bipartite(&g, &sides, &m);
            let Some(ell) = sl else { continue };
            let pass = run(&g, &m, &spec, ell, seed);
            // For each reached free Y at distance exactly ell, the count
            // must equal the number of shortest augmenting paths ending
            // there.
            let all = enumerate_augmenting_paths(&g, &m, ell);
            for y in 0..g.n() as NodeId {
                if sides[y as usize] && m.is_free(y) && pass.dist[y as usize] == Some(ell as u64) {
                    let expected = all
                        .iter()
                        .filter(|p| p.len() == ell + 1 && (p[0] == y || *p.last().unwrap() == y))
                        .count() as u128;
                    assert_eq!(
                        pass.total[y as usize], expected,
                        "seed {seed}, node {y}: count mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn out_nodes_stay_silent() {
        let g = path(4);
        let m = Matching::from_edges(&g, &[1]);
        // Monochromatic matched pair → all edges inactive.
        let spec = SubgraphSpec::from_coloring(&g, &m, &[false, true, true, false]);
        let pass = run(&g, &m, &spec, 3, 0);
        assert_eq!(pass.leaders, 0);
        assert_eq!(pass.stats.messages, 0);
    }
}
