//! The token pass: one emulated Luby iteration on the conflict graph of
//! augmenting paths (Section 3.2, "Computing a maximal set of
//! augmenting paths").
//!
//! Every reached free Y node ("leader") draws a random priority `w_y`
//! and launches a token that walks *backwards* along the counting BFS,
//! sampling each predecessor edge with probability `c_v[i] / n_v`
//! (so each of the `n_y` paths ending at `y` is equally likely — the
//! leader "chooses a winner among the paths it leads"). When tokens
//! meet at a node, only the largest priority survives. A token reaching
//! a free X node completes an augmenting path; a Flip message then
//! retraces the recorded hops, flipping matched/unmatched edges.
//!
//! Leaders at distance `d < ℓ` launch at round `ℓ - d`, so *all* tokens
//! occupy distance-`(ℓ - t)` nodes in round `t`: the paper's invariant
//! "tokens may arrive at a node only at a single round" holds even in
//! the mixed-length variant, and the surviving paths are vertex
//! disjoint.
//!
//! Tokens carry 64-bit priorities plus the leader id (ties broken by
//! id); the paper's `w_y ∈ [1, N⁴]` serves the same union bound.

use super::count::CountPass;
use super::{Role, SubgraphSpec};
use crate::state;
use dgraph::{Graph, Matching, NodeId, UNMATCHED};
use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol, SplitMix64};

/// Wire messages of the token pass.
#[derive(Debug, Clone, Copy)]
pub enum TokMsg {
    /// A walking token: `(priority, leader id)`.
    Token(u64, NodeId),
    /// Path-flip retrace.
    Flip,
}

impl BitSize for TokMsg {
    fn bit_size(&self) -> u64 {
        match self {
            TokMsg::Token(..) => 2 + 64 + 32,
            TokMsg::Flip => 2,
        }
    }
}

/// Outcome of one token pass.
#[derive(Debug)]
pub struct TokenOutcome {
    /// The matching after applying the surviving paths.
    pub matching: Matching,
    /// Number of augmenting paths applied.
    pub applied: usize,
    /// Network statistics.
    pub stats: NetStats,
}

struct TokenNode {
    role: Role,
    mate_port: Option<usize>,
    ell: u64,
    dist: Option<u64>,
    counts: Vec<u128>,
    total: u128,
    /// Port the winning token arrived on (toward the leader side).
    arrival_port: Option<usize>,
    /// Port the winning token was forwarded on (toward the X side);
    /// for leaders, the first sampled hop.
    forward_port: Option<usize>,
    /// Mate port after the pass (initialized to the current mate).
    new_mate_port: Option<usize>,
    /// Set on free X nodes that completed a path.
    initiated: bool,
}

impl TokenNode {
    fn is_leader(&self) -> bool {
        self.role == Role::Y && self.mate_port.is_none() && self.dist.is_some() && self.total > 0
    }

    /// Sample a predecessor port with probability `counts[p] / total`.
    fn sample_port(&self, rng: &mut SplitMix64) -> usize {
        debug_assert!(self.total > 0);
        let r = ((rng.next() as u128) << 64 | rng.next() as u128) % self.total;
        let mut acc = 0u128;
        for (p, &c) in self.counts.iter().enumerate() {
            acc += c;
            if r < acc {
                return p;
            }
        }
        unreachable!("total exceeds the sum of counts")
    }
}

impl Protocol for TokenNode {
    type Msg = TokMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, TokMsg>, inbox: Inbox<'_, TokMsg>) {
        if self.role == Role::Out {
            return;
        }
        // --- Flip retrace (traveling free X → leader). ---
        // On a fault-free plane exactly one Flip can reach a node, and
        // only on the port its token went out on (paths are vertex
        // disjoint). The adversary breaks both: a delayed Flip can
        // surface rounds late on a node that never forwarded a token
        // this pass. Only honour a Flip retracing our own forward
        // port — anything else is stale traffic to ignore.
        if inbox
            .iter()
            .any(|e| matches!(e.msg, TokMsg::Flip) && Some(e.port) == self.forward_port)
        {
            match self.role {
                Role::Y => {
                    // New mate is the X-side path edge; the old matched
                    // edge (the arrival port, if any) becomes unmatched.
                    self.new_mate_port = self.forward_port;
                    if let Some(a) = self.arrival_port {
                        ctx.send(a, TokMsg::Flip); // continue toward the leader
                    }
                    // else: this node *is* the leader — the path is done.
                }
                Role::X => {
                    let a = self.arrival_port.expect("intermediate X saw the token");
                    self.new_mate_port = Some(a);
                    ctx.send(a, TokMsg::Flip);
                }
                Role::Out => unreachable!(),
            }
            return;
        }

        // --- Token arrivals: keep the max, forward or complete. ---
        let mut best: Option<(u64, NodeId, usize)> = None;
        for env in inbox.iter() {
            if let TokMsg::Token(w, leader) = *env.msg {
                if best.is_none_or(|(bw, bl, _)| (w, leader) > (bw, bl)) {
                    best = Some((w, leader, env.port));
                }
            }
        }
        if let Some((w, leader, port)) = best {
            // Tokens visit a node only in its designated round ℓ - d(v)
            // (the paper's invariant). A delayed token arriving outside
            // it — or at a node the faulty counting pass never reached —
            // is stale: processing it would double-walk the node, so
            // drop it instead. On a fault-free plane this guard never
            // fires.
            if Some(ctx.round()) != self.dist.map(|d| self.ell - d) {
                return;
            }
            self.arrival_port = Some(port);
            match (self.role, self.mate_port) {
                (Role::X, None) => {
                    // Free X: the path is complete. Flip it.
                    self.new_mate_port = Some(port);
                    self.initiated = true;
                    ctx.send(port, TokMsg::Flip);
                }
                (Role::X, Some(mp)) => {
                    // Matched X: backward hop is the matching edge.
                    self.forward_port = Some(mp);
                    ctx.send(mp, TokMsg::Token(w, leader));
                }
                (Role::Y, Some(_)) => {
                    // Matched Y (arrived from its mate): sample a
                    // predecessor among the counting ports.
                    let p = self.sample_port(ctx.rng());
                    self.forward_port = Some(p);
                    ctx.send(p, TokMsg::Token(w, leader));
                }
                (Role::Y, None) => unreachable!("tokens never enter a free Y node"),
                (Role::Out, _) => unreachable!(),
            }
            return;
        }

        // --- Leader launch at round ℓ - d(y). ---
        if self.is_leader() && ctx.round() == self.ell - self.dist.expect("leader has dist") {
            let w = ctx.rng().next();
            let p = self.sample_port(ctx.rng());
            self.forward_port = Some(p);
            ctx.send(p, TokMsg::Token(w, ctx.id()));
        }
    }
}

/// Execute one token pass (2ℓ+1 rounds) given the counting results, and
/// apply all surviving augmenting paths.
pub fn run(
    g: &Graph,
    m: &Matching,
    spec: &SubgraphSpec,
    ell: usize,
    pass: &CountPass,
    seed: u64,
) -> TokenOutcome {
    run_cfg(g, m, spec, ell, pass, seed, ExecCfg::default())
}

/// [`run`] under explicit execution knobs.
pub fn run_cfg(
    g: &Graph,
    m: &Matching,
    spec: &SubgraphSpec,
    ell: usize,
    pass: &CountPass,
    seed: u64,
    cfg: ExecCfg,
) -> TokenOutcome {
    let mate_ports = super::mate_ports(g, m);
    let nodes: Vec<TokenNode> = (0..g.n() as NodeId)
        .map(|v| TokenNode {
            role: spec.role[v as usize],
            mate_port: mate_ports[v as usize],
            ell: ell as u64,
            dist: pass.dist[v as usize],
            counts: pass.counts[v as usize].clone(),
            total: pass.total[v as usize],
            arrival_port: None,
            forward_port: None,
            new_mate_port: mate_ports[v as usize],
            initiated: false,
        })
        .collect();
    let mut net = Network::new(state::topology_of(g), nodes, seed).with_cfg(cfg);
    net.run_rounds(2 * ell as u64 + 1);
    let (nodes, stats) = net.into_parts();
    let applied = nodes.iter().filter(|n| n.initiated).count();
    let mates: Vec<NodeId> = nodes
        .iter()
        .enumerate()
        .map(|(v, n)| match n.new_mate_port {
            Some(p) => g.incident(v as NodeId)[p].0,
            None => UNMATCHED,
        })
        .collect();
    // A Flip lost or parked mid-retrace leaves one-sided mate claims;
    // under an active fault plan keep only the pairs both endpoints
    // agree on (always a valid matching). Fault-free extraction is
    // unchanged.
    let matching = if cfg.effective_faults().is_active() {
        state::agreed_matching(g, &mates)
    } else {
        state::matching_from_mates(g, mates)
    };
    TokenOutcome {
        matching,
        applied,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::count;
    use dgraph::generators::random::bipartite_gnp;
    use dgraph::generators::structured::{complete_bipartite, path};

    fn one_iteration(
        g: &Graph,
        m: &Matching,
        spec: &SubgraphSpec,
        ell: usize,
        seed: u64,
    ) -> TokenOutcome {
        let pass = count::run(g, m, spec, ell, seed);
        run(g, m, spec, ell, &pass, seed + 1)
    }

    #[test]
    fn single_path_is_flipped() {
        let g = path(4);
        let sides = dgraph::bipartite::two_color(&g).unwrap();
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::from_edges(&g, &[1]);
        let out = one_iteration(&g, &m, &spec, 3, 5);
        assert_eq!(out.applied, 1);
        assert_eq!(out.matching.size(), 2);
        assert!(out.matching.contains(&g, 0) && out.matching.contains(&g, 2));
    }

    #[test]
    fn disjoint_augmentations_in_one_iteration() {
        // Complete bipartite, empty matching, ℓ = 1: the token pass
        // should match several X-Y pairs at once.
        let (g, sides) = complete_bipartite(6, 6);
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::new(g.n());
        let out = one_iteration(&g, &m, &spec, 1, 3);
        assert!(out.applied >= 1);
        assert_eq!(out.matching.size(), out.applied);
        assert!(out.matching.validate(&g).is_ok());
    }

    #[test]
    fn matching_size_strictly_grows() {
        for seed in 0..10 {
            let (g, sides) = bipartite_gnp(12, 12, 0.3, seed);
            let spec = SubgraphSpec::full_bipartite(&g, &sides);
            let m = dgraph::greedy::greedy_maximal(&g);
            let sl = dgraph::augmenting::shortest_augmenting_path_len_bipartite(&g, &sides, &m);
            let Some(ell) = sl else { continue };
            let out = one_iteration(&g, &m, &spec, ell, seed * 7);
            assert!(out.applied >= 1, "seed {seed}: a token must survive");
            assert_eq!(out.matching.size(), m.size() + out.applied);
            assert!(out.matching.validate(&g).is_ok());
        }
    }

    #[test]
    fn mixed_length_paths_are_handled() {
        // Two components: a bare edge (length-1 path) and a P4 with its
        // middle matched (length-3 path). Both augment in one pass with
        // ℓ = 3 thanks to staggered launches.
        let g = Graph::new(6, vec![(0, 1), (2, 3), (3, 4), (4, 5)]);
        let sides = dgraph::bipartite::two_color(&g).unwrap();
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::from_edges(&g, &[2]); // (3,4) matched
        let out = one_iteration(&g, &m, &spec, 3, 9);
        assert_eq!(out.applied, 2);
        assert_eq!(out.matching.size(), 3);
    }

    #[test]
    fn conflicting_paths_resolve_to_one() {
        // Star-like conflict: X = {0}, Y = {1, 2}; both length-1 paths
        // share node 0, so exactly one survives.
        let g = Graph::new(3, vec![(0, 1), (0, 2)]);
        let sides = vec![false, true, true];
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::new(3);
        let out = one_iteration(&g, &m, &spec, 1, 13);
        assert_eq!(out.applied, 1);
        assert_eq!(out.matching.size(), 1);
    }

    #[test]
    fn stats_have_small_messages() {
        let (g, sides) = bipartite_gnp(20, 20, 0.2, 4);
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m = Matching::new(g.n());
        let out = one_iteration(&g, &m, &spec, 1, 21);
        assert!(out.stats.max_msg_bits <= 98);
    }
}
