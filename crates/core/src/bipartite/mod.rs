//! Bipartite matching with `O(log Δ)`-bit messages — Section 3.2 of the
//! paper (Algorithm 3, the token-walk MIS emulation, Theorem 3.8).
//!
//! The machinery is parameterized by a [`SubgraphSpec`]: a role
//! assignment (X side / Y side / not participating) plus an active-edge
//! mask. Theorem 3.8 uses the trivial spec (the whole bipartite graph);
//! Algorithm 4 (general graphs) calls the same machinery on the random
//! bipartite subgraph `Ĝ`, which is exactly why the paper needs the
//! "`length at most ℓ`" variant — implemented here natively by
//! distance-staggered token launches.
//!
//! One **augmentation iteration** is
//!
//! 1. a counting pass ([`count`], Algorithm 3 / Figure 1): a layered
//!    BFS from all free X nodes records, per node, the number of
//!    shortest half-augmenting paths arriving on each port;
//! 2. a token pass ([`token`]): every reached free Y node draws a
//!    random priority and walks a token backward, sampling predecessor
//!    edges proportionally to the counts; tokens meeting at a node keep
//!    only the maximum priority (one emulated Luby iteration on the
//!    path conflict graph); surviving tokens reach free X nodes and
//!    flip their paths.
//!
//! [`aug_until_maximal`] repeats iterations until no augmenting path of
//! length ≤ ℓ remains, which is the postcondition `Aug(H, M, ℓ)` needs;
//! [`run`] wraps the phase schedule `ℓ = 1, 3, …, 2k-1` of Theorem 3.8.

pub mod count;
pub mod token;

use crate::state;
use dgraph::{EdgeId, Graph, Matching, NodeId};
use simnet::{ExecCfg, NetStats};

/// Role of a node within the (sub)graph the pass operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// X side (BFS sources when free).
    X,
    /// Y side (path endpoints when free).
    Y,
    /// Not participating (outside `V̂`).
    Out,
}

/// Which nodes and edges participate in a pass.
#[derive(Debug, Clone)]
pub struct SubgraphSpec {
    /// Per-node role.
    pub role: Vec<Role>,
    /// Per-edge participation mask.
    pub active: Vec<bool>,
}

impl SubgraphSpec {
    /// The whole bipartite graph: `sides[v] == false` is the X side.
    pub fn full_bipartite(g: &Graph, sides: &[bool]) -> Self {
        assert!(
            dgraph::bipartite::is_valid_bipartition(g, sides),
            "full_bipartite requires a valid bipartition"
        );
        SubgraphSpec {
            role: sides
                .iter()
                .map(|&s| if s { Role::Y } else { Role::X })
                .collect(),
            active: vec![true; g.m()],
        }
    }

    /// The random bipartite subgraph `Ĝ` of Algorithm 4, Line 4:
    /// `V̂` = free nodes plus bichromatically matched pairs; `Ê` =
    /// bichromatic edges within `V̂`. Red (`false`) plays X.
    pub fn from_coloring(g: &Graph, m: &Matching, colors: &[bool]) -> Self {
        assert_eq!(colors.len(), g.n());
        let eligible: Vec<bool> = (0..g.n() as NodeId)
            .map(|v| match m.mate(v) {
                None => true,
                Some(w) => colors[v as usize] != colors[w as usize],
            })
            .collect();
        let role = (0..g.n())
            .map(|v| {
                if !eligible[v] {
                    Role::Out
                } else if colors[v] {
                    Role::Y
                } else {
                    Role::X
                }
            })
            .collect();
        let active = (0..g.m() as EdgeId)
            .map(|e| {
                let (u, v) = g.endpoints(e);
                eligible[u as usize]
                    && eligible[v as usize]
                    && colors[u as usize] != colors[v as usize]
            })
            .collect();
        SubgraphSpec { role, active }
    }

    /// Per-port activity for node `v`: a port is usable iff its edge is
    /// active (which implies the far endpoint participates).
    pub fn active_ports(&self, g: &Graph, v: NodeId) -> Vec<bool> {
        g.incident(v)
            .iter()
            .map(|&(_, e)| self.active[e as usize])
            .collect()
    }
}

/// Outcome of one `Aug`-style maximality loop.
#[derive(Debug)]
pub struct AugOutcome {
    /// The matching after augmentation.
    pub matching: Matching,
    /// Total augmenting paths applied.
    pub applied: usize,
    /// Count+token iterations executed.
    pub iterations: u64,
    /// Accumulated network statistics.
    pub stats: NetStats,
}

/// Repeat count+token iterations until no augmenting path of length
/// ≤ `ell` remains in the subgraph — the contract of `Aug(H, M, ℓ)`
/// used by Algorithms 1 (bipartite instantiation) and 4.
///
/// Termination is detected with the simulator oracle (are there any
/// reached free Y nodes after a counting pass?); the paper, as usual,
/// does not charge for termination detection. The loop is capped at
/// `4·n` iterations, far beyond the whp `O(log n)` bound — reaching the
/// cap would indicate a bug and panics.
pub fn aug_until_maximal(
    g: &Graph,
    m0: &Matching,
    spec: &SubgraphSpec,
    ell: usize,
    seed: u64,
) -> AugOutcome {
    aug_until_maximal_cfg(g, m0, spec, ell, seed, ExecCfg::default())
}

/// [`aug_until_maximal`] under explicit execution knobs.
pub fn aug_until_maximal_cfg(
    g: &Graph,
    m0: &Matching,
    spec: &SubgraphSpec,
    ell: usize,
    seed: u64,
    cfg: ExecCfg,
) -> AugOutcome {
    assert!(ell % 2 == 1, "augmenting path lengths are odd");
    let faulty = cfg.effective_faults().is_active();
    let mut m = m0.clone();
    let mut stats = NetStats::default();
    let mut applied = 0usize;
    let mut iterations = 0u64;
    let cap = 4 * g.n() as u64 + 16;
    loop {
        let pass = count::run_cfg(g, &m, spec, ell, seed.wrapping_add(iterations * 2), cfg);
        stats.absorb(&pass.stats);
        if pass.leaders == 0 {
            break; // no augmenting path of length ≤ ℓ remains
        }
        let tok = token::run_cfg(
            g,
            &m,
            spec,
            ell,
            &pass,
            seed.wrapping_add(iterations * 2 + 1),
            cfg,
        );
        stats.absorb(&tok.stats);
        // Fault-free, a reached leader always yields an augmentation
        // and the loop converges whp. Under an active fault plan the
        // adversary can eat every token of an iteration, or keep the
        // counting pass seeing paths the token pass cannot complete:
        // stop making progress instead of panicking — the matching so
        // far is valid, liveness just degrades.
        if faulty && tok.applied == 0 {
            m = tok.matching;
            break;
        }
        assert!(
            tok.applied > 0,
            "a reached leader must yield at least one augmentation"
        );
        applied += tok.applied;
        m = tok.matching;
        iterations += 1;
        if faulty && iterations >= cap {
            break;
        }
        assert!(iterations < cap, "augmentation loop failed to converge");
    }
    AugOutcome {
        matching: m,
        applied,
        iterations,
        stats,
    }
}

/// Per-phase details of [`run_phased`].
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Path length `ℓ` of the phase.
    pub ell: usize,
    /// Augmenting paths applied during the phase.
    pub applied: usize,
    /// Count+token iterations consumed.
    pub iterations: u64,
    /// Rounds consumed by the phase.
    pub rounds: u64,
    /// Matching size after the phase.
    pub matching_size: usize,
}

/// Theorem 3.8: `(1 - 1/k)`-approximate maximum matching of a bipartite
/// graph with small messages, via phases `ℓ = 1, 3, …, 2k-1`.
///
/// ```
/// use dgraph::generators::random::bipartite_gnp;
/// let (g, sides) = bipartite_gnp(30, 30, 0.1, 5);
/// #[allow(deprecated)]
/// let out = dmatch::bipartite::run(&g, &sides, 3, 42);
/// let opt = dgraph::hopcroft_karp::max_matching(&g, &sides).size();
/// assert!(out.matching.size() as f64 >= (1.0 - 1.0 / 3.0) * opt as f64);
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Bipartite { k }).sides(sides)`"
)]
#[allow(deprecated)]
pub fn run(g: &Graph, sides: &[bool], k: usize, seed: u64) -> AugOutcome {
    run_phased(g, sides, k, seed).0
}

/// [`run`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Bipartite { k }).sides(sides).exec(cfg)`"
)]
#[allow(deprecated)]
pub fn run_cfg(g: &Graph, sides: &[bool], k: usize, seed: u64, cfg: ExecCfg) -> AugOutcome {
    run_phased_cfg(g, sides, k, seed, cfg).0
}

/// Like [`run`], additionally returning a per-phase log (used by the
/// E3 experiment and the phase-invariant tests).
#[deprecated(
    since = "0.1.0",
    note = "drive a Bipartite session stepwise: `Session::step()` + `Session::phase_log()`"
)]
#[allow(deprecated)]
pub fn run_phased(
    g: &Graph,
    sides: &[bool],
    k: usize,
    seed: u64,
) -> (AugOutcome, Vec<PhaseOutcome>) {
    run_phased_cfg(g, sides, k, seed, ExecCfg::default())
}

/// [`run_phased`] under explicit execution knobs. The phase schedule
/// (`ℓ = 2·phase + 1`, seed offset `0x1000·ℓ`) must stay aligned with
/// the `dmatch::session` Bipartite driver, which re-implements this
/// loop stepwise (asserted bit-identical by `tests/prop_session.rs`).
#[deprecated(
    since = "0.1.0",
    note = "drive a Bipartite session stepwise: `Session::step()` + `Session::phase_log()`"
)]
pub fn run_phased_cfg(
    g: &Graph,
    sides: &[bool],
    k: usize,
    seed: u64,
    cfg: ExecCfg,
) -> (AugOutcome, Vec<PhaseOutcome>) {
    assert!(k >= 1);
    let spec = SubgraphSpec::full_bipartite(g, sides);
    let mut m = Matching::new(g.n());
    let mut stats = NetStats::default();
    let mut applied = 0;
    let mut iterations = 0;
    let mut phases = Vec::with_capacity(k);
    for phase in 0..k {
        let ell = 2 * phase + 1;
        let out = aug_until_maximal_cfg(
            g,
            &m,
            &spec,
            ell,
            seed.wrapping_add(0x1000 * ell as u64),
            cfg,
        );
        m = out.matching;
        stats.absorb(&out.stats);
        applied += out.applied;
        iterations += out.iterations;
        phases.push(PhaseOutcome {
            ell,
            applied: out.applied,
            iterations: out.iterations,
            rounds: out.stats.rounds,
            matching_size: m.size(),
        });
    }
    (
        AugOutcome {
            matching: m,
            applied,
            iterations,
            stats,
        },
        phases,
    )
}

/// Run phases with growing `ℓ` until **no augmenting path of any
/// length remains** — an exact distributed maximum matching (the
/// distributed analogue of full Hopcroft–Karp; `O(√opt)` phases by
/// Lemma 3.5's standard corollary). Used as a self-check and for the
/// exact-scheduler ablations; the paper's point is that stopping at
/// `ℓ = 2k-1` is much cheaper.
pub fn run_to_optimal(g: &Graph, sides: &[bool], seed: u64) -> AugOutcome {
    let spec = SubgraphSpec::full_bipartite(g, sides);
    let mut m = Matching::new(g.n());
    let mut stats = NetStats::default();
    let mut applied = 0;
    let mut iterations = 0;
    let mut ell = 1usize;
    loop {
        let out = aug_until_maximal(g, &m, &spec, ell, seed.wrapping_add(0x2000 * ell as u64));
        m = out.matching;
        stats.absorb(&out.stats);
        applied += out.applied;
        iterations += out.iterations;
        match dgraph::augmenting::shortest_augmenting_path_len_bipartite(g, sides, &m) {
            None => break,
            Some(l) => {
                debug_assert!(l > ell, "phase ℓ={ell} left a shorter path {l}");
                ell = l;
            }
        }
    }
    AugOutcome {
        matching: m,
        applied,
        iterations,
        stats,
    }
}

/// Fresh mate-port view of a matching (shared by the pass protocols).
pub(crate) fn mate_ports(g: &Graph, m: &Matching) -> Vec<Option<usize>> {
    state::node_inits(g, m)
        .into_iter()
        .map(|i| i.mate_port)
        .collect()
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, bipartite_regular};
    use dgraph::generators::structured::{complete_bipartite, path};
    use dgraph::hopcroft_karp;

    fn check_ratio(g: &Graph, sides: &[bool], k: usize, seed: u64) {
        let out = run(g, sides, k, seed);
        assert!(out.matching.validate(g).is_ok());
        let opt = hopcroft_karp::max_matching(g, sides).size();
        let bound = 1.0 - 1.0 / k as f64;
        let got = if opt == 0 {
            1.0
        } else {
            out.matching.size() as f64 / opt as f64
        };
        assert!(
            got >= bound - 1e-9,
            "k={k} seed={seed}: ratio {got} < {bound} (|M|={}, opt={opt})",
            out.matching.size()
        );
        // The theorem's postcondition: no augmenting path of length ≤ 2k-1.
        assert!(
            dgraph::augmenting::shortest_augmenting_path_len_bipartite(g, sides, &out.matching)
                .is_none_or(|l| l > 2 * k - 1),
            "k={k} seed={seed}: short augmenting path survived"
        );
    }

    #[test]
    fn ratio_on_random_bipartite() {
        for seed in 0..5 {
            let (g, sides) = bipartite_gnp(20, 20, 0.12, seed);
            for k in 1..=3 {
                check_ratio(&g, &sides, k, seed + 100 * k as u64);
            }
        }
    }

    #[test]
    fn perfect_on_complete_bipartite_with_k2() {
        let (g, sides) = complete_bipartite(8, 8);
        let out = run(&g, &sides, 2, 3);
        // K_{8,8} has no augmenting path of length ≥ 3 left after ℓ=1
        // phases reach maximality... but ratio ≥ 1/2 guaranteed; with
        // k=2 ratio ≥ 3/4 ⇒ ≥ 6 edges.
        assert!(out.matching.size() >= 6);
    }

    #[test]
    fn exact_on_path_with_large_k() {
        let g = path(11); // opt = 5
        let sides = dgraph::bipartite::two_color(&g).unwrap();
        let out = run(&g, &sides, 5, 9);
        assert_eq!(out.matching.size(), 5);
    }

    #[test]
    fn regular_graphs_reach_high_ratio() {
        let (g, sides) = bipartite_regular(32, 3, 4);
        check_ratio(&g, &sides, 4, 11);
    }

    #[test]
    fn messages_stay_small() {
        let (g, sides) = bipartite_gnp(40, 40, 0.08, 2);
        let out = run(&g, &sides, 3, 5);
        // Counts are ≤ Δ^{(ℓ+1)/2}: with Δ ≤ ~10 and ℓ ≤ 5, values fit
        // comfortably in O(ℓ log Δ) bits; tokens carry O(log n) bits.
        assert!(
            out.stats.max_msg_bits <= 8 + 128,
            "max message = {} bits",
            out.stats.max_msg_bits
        );
    }

    #[test]
    fn subgraph_spec_from_coloring() {
        // Path 0-1-2-3, edge (1,2) matched, colors R,B,B,R.
        let g = path(4);
        let m = Matching::from_edges(&g, &[1]);
        let colors = vec![false, true, true, false];
        let spec = SubgraphSpec::from_coloring(&g, &m, &colors);
        // Pair (1,2) is monochromatic → both Out; 0 and 3 free.
        assert_eq!(spec.role[0], Role::X);
        assert_eq!(spec.role[1], Role::Out);
        assert_eq!(spec.role[2], Role::Out);
        assert_eq!(spec.role[3], Role::X);
        assert!(
            spec.active.iter().all(|&a| !a),
            "all edges touch Out or monochromatic nodes"
        );

        // Colors R,B,R,B: pair (1,2) bichromatic → all in V̂.
        let colors = vec![false, true, false, true];
        let spec = SubgraphSpec::from_coloring(&g, &m, &colors);
        assert_eq!(spec.role, vec![Role::X, Role::Y, Role::X, Role::Y]);
        assert_eq!(spec.active, vec![true, true, true]);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, sides) = bipartite_gnp(15, 15, 0.2, 8);
        let a = run(&g, &sides, 2, 77);
        let b = run(&g, &sides, 2, 77);
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.stats.rounds, b.stats.rounds);
    }

    #[test]
    fn run_to_optimal_matches_hopcroft_karp() {
        for seed in 0..6 {
            let (g, sides) = bipartite_gnp(15, 18, 0.18, seed);
            let out = run_to_optimal(&g, &sides, seed);
            let opt = hopcroft_karp::max_matching(&g, &sides).size();
            assert_eq!(out.matching.size(), opt, "seed {seed}");
            assert!(out.matching.validate(&g).is_ok());
        }
    }

    #[test]
    fn phase_log_tracks_invariants() {
        let (g, sides) = bipartite_gnp(20, 20, 0.15, 12);
        let (out, phases) = run_phased(&g, &sides, 3, 5);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].ell, 1);
        assert_eq!(phases[2].ell, 5);
        assert_eq!(phases.last().unwrap().matching_size, out.matching.size());
        // Matching size is non-decreasing across phases; rounds sum up.
        for w in phases.windows(2) {
            assert!(w[1].matching_size >= w[0].matching_size);
        }
        assert_eq!(
            phases.iter().map(|p| p.rounds).sum::<u64>(),
            out.stats.rounds
        );
        assert_eq!(phases.iter().map(|p| p.applied).sum::<usize>(), out.applied);
    }

    #[test]
    fn phase_postcondition_no_short_paths() {
        // After the ℓ-phase completes, no augmenting path of length ≤ ℓ
        // may remain (the Lemma 3.4 driver of Theorem 3.8).
        let (g, sides) = bipartite_gnp(16, 16, 0.2, 21);
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let mut m = Matching::new(g.n());
        for ell in [1usize, 3, 5] {
            let out = aug_until_maximal(&g, &m, &spec, ell, 9);
            m = out.matching;
            let sl = dgraph::augmenting::shortest_augmenting_path_len_bipartite(&g, &sides, &m);
            assert!(
                sl.is_none_or(|l| l > ell),
                "phase ℓ={ell} left a path of length {sl:?}"
            );
        }
    }
}
