//! Israeli–Itai randomized maximal matching (1986) — the classical
//! distributed ½-MCM baseline the paper improves on.
//!
//! Each *iteration* spans three synchronous rounds:
//!
//! 1. **Propose** — every active node flips a coin; heads ("male")
//!    nodes propose to a uniformly random active neighbor.
//! 2. **Accept** — tails ("female") nodes accept one incoming proposal
//!    (lowest port), which immediately matches the pair.
//! 3. **Announce** — newly matched nodes tell their other neighbors,
//!    who mark the corresponding ports dead.
//!
//! A node halts once it is matched (after announcing) or all of its
//! neighbors are matched — so the result is always a *maximal*
//! matching, which is a ½-approximation of the maximum. The number of
//! iterations is `O(log n)` with high probability \[15\].
//!
//! Messages are constant-size (2-bit tags), well inside CONGEST.

use crate::state::{self, NodeInit};
use dgraph::{Graph, Matching, NodeId, UNMATCHED};
use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol};

/// Wire messages (2 bits each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IIMsg {
    /// "Will you match with me?"
    Propose,
    /// "Yes" (sent only to the chosen proposer; consummates the match).
    Accept,
    /// "I am matched; stop considering this edge."
    Matched,
}

impl BitSize for IIMsg {
    fn bit_size(&self) -> u64 {
        2
    }
}

/// Per-node protocol state.
pub struct IINode {
    /// Port of the mate once matched.
    pub mate_port: Option<usize>,
    /// Which ports still lead to unmatched nodes.
    active_port: Vec<bool>,
    /// True while this node is male in the current iteration.
    male: bool,
    /// Port proposed to in the current iteration.
    proposed_to: Option<usize>,
    announced: bool,
}

impl IINode {
    /// A cold node of the given degree: unmatched, all ports live. The
    /// oracle's micro-executor builds fresh-session ball nodes from the
    /// induced degree alone — bit-identical to `new` on a `NodeInit`
    /// with no warm mate, which reads only `mate_port` and the degree.
    pub(crate) fn cold(degree: usize) -> Self {
        IINode {
            mate_port: None,
            active_port: vec![true; degree],
            male: false,
            proposed_to: None,
            announced: false,
        }
    }

    fn new(init: &NodeInit) -> Self {
        IINode {
            mate_port: init.mate_port,
            active_port: vec![true; init.edge_ids.len()],
            male: false,
            proposed_to: None,
            announced: false, // pre-matched nodes announce in their first round
        }
    }

    fn matched(&self) -> bool {
        self.mate_port.is_some()
    }
}

impl Protocol for IINode {
    type Msg = IIMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, IIMsg>, inbox: Inbox<'_, IIMsg>) {
        let phase = ctx.round() % 3;
        // Dead-port bookkeeping happens in every phase.
        for env in inbox.iter() {
            if *env.msg == IIMsg::Matched {
                self.active_port[env.port] = false;
            }
        }
        match phase {
            0 => {
                // Nodes that entered matched (warm start) announce
                // once, then leave immediately: the announcement is
                // already on the wire and nothing they could ever
                // receive matters again. Halting here (rather than in
                // a later phase) keeps the sparse scheduler's active
                // set shrinking as fast as the matching grows.
                if self.matched() && !self.announced {
                    self.announce(ctx);
                    ctx.halt();
                    return;
                }
                if self.matched() {
                    ctx.halt();
                    return;
                }
                let live: Vec<usize> = (0..ctx.degree()).filter(|&p| self.active_port[p]).collect();
                if live.is_empty() {
                    ctx.halt(); // isolated among matched nodes: maximality holds
                    return;
                }
                self.male = ctx.rng().bernoulli(0.5);
                self.proposed_to = None;
                if self.male {
                    let p = live[ctx.rng().below(live.len() as u64) as usize];
                    self.proposed_to = Some(p);
                    ctx.send(p, IIMsg::Propose);
                }
            }
            1 => {
                if self.matched() || self.male {
                    return; // males ignore proposals
                }
                // Accept the lowest-port live proposal.
                if let Some(env) = inbox
                    .iter()
                    .find(|e| *e.msg == IIMsg::Propose && self.active_port[e.port])
                {
                    self.mate_port = Some(env.port);
                    ctx.send(env.port, IIMsg::Accept);
                }
            }
            2 => {
                if !self.matched() {
                    // Only honour an Accept on the port this iteration's
                    // proposal went out on: under adversarial delay a
                    // stale Accept can surface rounds later on a port
                    // the node has since abandoned, and consummating it
                    // would double-match the other endpoint.
                    if let Some(env) = inbox
                        .iter()
                        .find(|e| *e.msg == IIMsg::Accept && Some(e.port) == self.proposed_to)
                    {
                        self.mate_port = Some(env.port);
                    }
                }
                if self.matched() && !self.announced {
                    self.announce(ctx);
                    // Announced couples are done; drop out of the
                    // round loop immediately (see phase 0).
                    ctx.halt();
                }
            }
            _ => unreachable!(),
        }
    }
}

impl IINode {
    fn announce(&mut self, ctx: &mut Ctx<'_, IIMsg>) {
        let mate = self.mate_port.expect("announce requires a mate");
        for p in 0..ctx.degree() {
            if p != mate {
                ctx.send(p, IIMsg::Matched);
            }
        }
        self.announced = true;
    }
}

/// Round budget: `O(log n)` iterations whp, with a generous constant so
/// a legitimate unlucky run never trips the assert.
pub fn round_budget(n: usize) -> u64 {
    3 * (200 + 60 * simnet::id_bits(n.max(2)))
}

/// Run Israeli–Itai to completion on `g`, starting from `initial`
/// (pass the empty matching for the classical algorithm). Returns the
/// resulting *maximal* matching and the network statistics.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::IsraeliItai).warm_start(initial)`"
)]
pub fn maximal_matching_from(g: &Graph, initial: &Matching, seed: u64) -> (Matching, NetStats) {
    maximal_matching_from_cfg(g, initial, seed, ExecCfg::default())
}

/// The Israeli–Itai primitive every higher layer builds on: run to
/// completion from `initial` under explicit execution knobs (worker
/// threads / fault injection) — results are bit-identical across
/// thread counts. Prefer driving it through `dmatch::session::Session`
/// (`Algorithm::IsraeliItai`); this function stays public as the
/// building block for compound protocols (weight classes, schedulers).
pub fn maximal_matching_from_cfg(
    g: &Graph,
    initial: &Matching,
    seed: u64,
    cfg: ExecCfg,
) -> (Matching, NetStats) {
    let inits = state::node_inits(g, initial);
    let nodes: Vec<IINode> = inits.iter().map(IINode::new).collect();
    let mut net = Network::new(state::topology_of(g), nodes, seed).with_cfg(cfg);
    net.run_until_halt(round_budget(g.n()));
    let (nodes, stats) = net.into_parts();
    let mates: Vec<NodeId> = nodes
        .iter()
        .enumerate()
        .map(|(v, s)| match s.mate_port {
            Some(p) => g.incident(v as NodeId)[p].0,
            None => UNMATCHED,
        })
        .collect();
    (state::matching_from_mates(g, mates), stats)
}

/// Classical Israeli–Itai from the empty matching.
///
/// ```
/// use dgraph::generators::random::gnp;
/// let g = gnp(100, 0.05, 1);
/// #[allow(deprecated)]
/// let (m, stats) = dmatch::israeli_itai::maximal_matching(&g, 7);
/// assert!(m.is_maximal(&g));            // ⇒ a ½-approximation
/// assert!(stats.max_msg_bits <= 2);     // constant-size messages
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::IsraeliItai)` (see the crate-docs migration table)"
)]
pub fn maximal_matching(g: &Graph, seed: u64) -> (Matching, NetStats) {
    maximal_matching_from_cfg(g, &Matching::new(g.n()), seed, ExecCfg::default())
}

/// [`maximal_matching`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::IsraeliItai).exec(cfg)`"
)]
pub fn maximal_matching_cfg(g: &Graph, seed: u64, cfg: ExecCfg) -> (Matching, NetStats) {
    maximal_matching_from_cfg(g, &Matching::new(g.n()), seed, cfg)
}

/// Run exactly `iterations` Israeli–Itai iterations (3 rounds each) and
/// return whatever matching exists then — *not* necessarily maximal.
///
/// This is the constant-round regime of Hoepman–Kutten–Lotker \[12\]
/// (cited by the paper): on trees, a constant number of iterations
/// already yields a `(½-ε)`-approximation in expectation. Experiment
/// E14 measures the ratio as a function of `iterations`.
pub fn truncated_matching(g: &Graph, seed: u64, iterations: u64) -> (Matching, NetStats) {
    let inits = state::node_inits(g, &Matching::new(g.n()));
    let nodes: Vec<IINode> = inits.iter().map(IINode::new).collect();
    let mut net = Network::new(state::topology_of(g), nodes, seed);
    net.run_rounds(3 * iterations);
    let (nodes, stats) = net.into_parts();
    let mates: Vec<NodeId> = nodes
        .iter()
        .enumerate()
        .map(|(v, s)| match s.mate_port {
            Some(p) => g.incident(v as NodeId)[p].0,
            None => UNMATCHED,
        })
        .collect();
    (state::matching_from_mates(g, mates), stats)
}

/// Run Israeli–Itai for a *fixed* round budget under an arbitrary
/// `ExecCfg` fault plan and return the **agreed** matching: pairs in
/// which both endpoints claim each other. Broken synchrony (drops,
/// delays, crashes) can leave one-sided claims behind; the agreement
/// rule discards them, so the result is always a valid matching — the
/// safety guarantee fault injection verifies. Liveness degrades to
/// whatever the surviving messages achieved within `rounds`.
pub fn bounded_matching_from_cfg(
    g: &Graph,
    initial: &Matching,
    seed: u64,
    cfg: ExecCfg,
    rounds: u64,
) -> (Matching, NetStats) {
    let inits = state::node_inits(g, initial);
    let nodes: Vec<IINode> = inits.iter().map(IINode::new).collect();
    let mut net = Network::new(state::topology_of(g), nodes, seed).with_cfg(cfg);
    net.run_rounds(rounds);
    let (nodes, stats) = net.into_parts();
    let claims: Vec<NodeId> = nodes
        .iter()
        .enumerate()
        .map(|(v, s)| match s.mate_port {
            Some(p) => g.incident(v as NodeId)[p].0,
            None => UNMATCHED,
        })
        .collect();
    (state::agreed_matching(g, &claims), stats)
}

/// Run Israeli–Itai for a fixed round budget under message loss and
/// return the *agreed* matching: pairs in which both endpoints claim
/// each other. Safety check for fault injection — agreement pairs
/// always form a valid matching even when messages vanish.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).adversary(FaultPlan::drop(loss)).round_limit(rounds)` \
            (bit-identical for the same seed)"
)]
pub fn lossy_matching(g: &Graph, seed: u64, rounds: u64, loss: f64) -> (Matching, u64) {
    let report = crate::session::Session::on(g)
        .adversary(simnet::FaultPlan::drop(loss))
        .round_limit(rounds)
        .seed(seed)
        .build()
        .run_to_completion();
    (report.matching, report.stats.dropped)
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;
    use dgraph::generators::structured::{complete, cycle, path, star};

    #[test]
    fn produces_maximal_matchings() {
        for seed in 0..10 {
            let g = gnp(60, 0.08, seed);
            let (m, _) = maximal_matching(&g, seed);
            assert!(m.validate(&g).is_ok());
            assert!(m.is_maximal(&g), "seed {seed}: not maximal");
        }
    }

    #[test]
    fn half_approximation_holds() {
        for seed in 0..10 {
            let g = gnp(40, 0.1, 100 + seed);
            let (m, _) = maximal_matching(&g, seed);
            let opt = dgraph::blossom::max_matching(&g).size();
            assert!(2 * m.size() >= opt, "seed {seed}: {} < {opt}/2", m.size());
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        // Complete graph: many conflicts, still O(log n) iterations.
        let g = complete(128);
        let (m, stats) = maximal_matching(&g, 7);
        assert_eq!(m.size(), 64);
        assert!(
            stats.rounds <= 3 * 80,
            "took {} rounds on K128",
            stats.rounds
        );
    }

    #[test]
    fn structured_families() {
        let (m, _) = maximal_matching(&path(9), 1);
        assert!(m.is_maximal(&path(9)));
        let (m, _) = maximal_matching(&cycle(7), 2);
        assert!(m.is_maximal(&cycle(7)));
        let (m, _) = maximal_matching(&star(10), 3);
        assert_eq!(m.size(), 1, "star admits exactly one matched edge");
    }

    #[test]
    fn respects_warm_start() {
        let g = path(6);
        let init = Matching::from_edges(&g, &[2]); // middle edge (2,3)
        let (m, _) = maximal_matching_from(&g, &init, 5);
        assert!(m.contains(&g, 2), "warm-start edges must survive");
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn messages_are_constant_size() {
        let g = gnp(50, 0.1, 3);
        let (_, stats) = maximal_matching(&g, 11);
        assert_eq!(stats.max_msg_bits, 2);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::new(5, vec![]);
        let (m, stats) = maximal_matching(&g, 0);
        assert_eq!(m.size(), 0);
        assert!(stats.rounds <= 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gnp(30, 0.15, 9);
        let (m1, s1) = maximal_matching(&g, 42);
        let (m2, s2) = maximal_matching(&g, 42);
        assert_eq!(m1, m2);
        assert_eq!(s1.rounds, s2.rounds);
    }
}
