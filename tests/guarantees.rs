//! Integration tests: every algorithm of the paper meets its stated
//! guarantee on a zoo of graph families, measured against the exact
//! solvers. These span all workspace crates.

use distributed_matching::dgraph::generators::random::{
    barabasi_albert, bipartite_gnp, bipartite_regular, gnp, random_tree,
};
use distributed_matching::dgraph::generators::structured::{
    complete, complete_bipartite, cycle, grid, hypercube, p4_chain, path, star,
};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{blossom, hopcroft_karp, hungarian, Graph};
use distributed_matching::dmatch::{weighted, Algorithm, RunReport, Session};

/// One unified-driver run with default (oracle) termination.
fn run_alg(g: &Graph, alg: Algorithm, seed: u64) -> RunReport {
    Session::on(g)
        .algorithm(alg)
        .seed(seed)
        .build()
        .run_to_completion()
}

fn general_zoo() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp_sparse", gnp(48, 0.07, 1)),
        ("gnp_dense", gnp(30, 0.3, 2)),
        ("cycle_even", cycle(24)),
        ("cycle_odd", cycle(25)),
        ("path", path(31)),
        ("star", star(16)),
        ("grid", grid(6, 5)),
        ("p4_chain", p4_chain(6)),
        ("complete", complete(12)),
        ("tree", random_tree(40, 3)),
        ("scale_free", barabasi_albert(50, 2, 4)),
        ("hypercube", hypercube(5)),
    ]
}

#[test]
fn israeli_itai_is_maximal_everywhere() {
    for (name, g) in general_zoo() {
        let m = run_alg(&g, Algorithm::IsraeliItai, 7).matching;
        assert!(m.validate(&g).is_ok(), "{name}");
        assert!(m.is_maximal(&g), "{name}: not maximal");
        let opt = blossom::max_matching(&g).size();
        assert!(2 * m.size() >= opt, "{name}: below ½");
    }
}

#[test]
fn generic_algorithm_meets_bound_everywhere() {
    for (name, g) in general_zoo() {
        for k in [1usize, 2] {
            let r = run_alg(&g, Algorithm::Generic { k }, 11);
            assert!(r.matching.validate(&g).is_ok(), "{name}");
            let opt = blossom::max_matching(&g).size();
            let bound = 1.0 - 1.0 / (k as f64 + 1.0);
            assert!(
                r.matching.size() as f64 >= bound * opt as f64 - 1e-9,
                "{name}, k={k}: {} < {bound}·{opt}",
                r.matching.size()
            );
        }
    }
}

#[test]
fn general_algorithm_meets_bound_on_the_zoo() {
    for (name, g) in general_zoo() {
        let k = 2;
        let r = run_alg(
            &g,
            Algorithm::General {
                k,
                early_stop: Some(30),
            },
            5,
        );
        assert!(r.matching.validate(&g).is_ok(), "{name}");
        let opt = blossom::max_matching(&g).size();
        assert!(
            2 * r.matching.size() >= opt,
            "{name}: {} below ½·{opt}",
            r.matching.size()
        );
    }
}

#[test]
fn bipartite_algorithm_meets_bound_on_bipartite_zoo() {
    let zoo: Vec<(&str, Graph, Vec<bool>)> = vec![
        {
            let (g, s) = bipartite_gnp(18, 22, 0.15, 5);
            ("bgnp", g, s)
        },
        {
            let (g, s) = bipartite_regular(20, 3, 6);
            ("bregular", g, s)
        },
        {
            let (g, s) = complete_bipartite(9, 11);
            ("kab", g, s)
        },
        {
            let g = path(20);
            let s = distributed_matching::dgraph::bipartite::two_color(&g).unwrap();
            ("path", g, s)
        },
        {
            let g = hypercube(4);
            let s = distributed_matching::dgraph::bipartite::two_color(&g).unwrap();
            ("hypercube", g, s)
        },
    ];
    for (name, g, sides) in zoo {
        for k in [1usize, 2, 4] {
            let out = Session::on(&g)
                .algorithm(Algorithm::Bipartite { k })
                .sides(&sides)
                .seed(3)
                .build()
                .run_to_completion();
            assert!(out.matching.validate(&g).is_ok(), "{name}");
            let opt = hopcroft_karp::max_matching(&g, &sides).size();
            let bound = 1.0 - 1.0 / k as f64;
            assert!(
                out.matching.size() as f64 >= bound * opt as f64 - 1e-9,
                "{name}, k={k}: {} < {bound}·{opt}",
                out.matching.size()
            );
            // Theorem 3.8 postcondition.
            let sl =
                distributed_matching::dgraph::augmenting::shortest_augmenting_path_len_bipartite(
                    &g,
                    &sides,
                    &out.matching,
                );
            assert!(
                sl.is_none_or(|l| l > 2 * k - 1),
                "{name}, k={k}: short path left"
            );
        }
    }
}

#[test]
fn weighted_algorithm_meets_bound_across_weight_models() {
    let eps = 0.1;
    for (wname, model) in [
        ("uniform", WeightModel::Uniform(0.5, 3.0)),
        ("exponential", WeightModel::Exponential(1.5)),
        ("integer", WeightModel::Integer(1, 9)),
        (
            "powerlaw",
            WeightModel::PowerLaw {
                lo: 1.0,
                alpha: 1.3,
            },
        ),
    ] {
        for seed in 0..3u64 {
            let (g0, sides) = bipartite_gnp(12, 12, 0.25, seed);
            let g = apply_weights(&g0, model, seed + 40);
            let r = run_alg(
                &g,
                Algorithm::Weighted {
                    epsilon: eps,
                    mwm_box: weighted::MwmBox::SeqClass,
                },
                seed,
            );
            let opt = hungarian::max_weight_matching(&g, &sides).weight(&g);
            assert!(
                r.matching.weight(&g) >= (0.5 - eps) * opt - 1e-9,
                "{wname} seed {seed}: {} < (½-ε)·{opt}",
                r.matching.weight(&g)
            );
        }
    }
}

#[test]
fn quality_ordering_holds_in_expectation() {
    // Averaged over seeds, the paper's algorithms dominate the ½
    // baseline: II ≤ generic(k=2) ≈ general(k=3) ≤ OPT.
    let mut ii_total = 0usize;
    let mut gen2_total = 0usize;
    let mut opt_total = 0usize;
    for seed in 0..5u64 {
        let g = gnp(40, 0.1, 100 + seed);
        ii_total += run_alg(&g, Algorithm::IsraeliItai, seed).matching.size();
        gen2_total += run_alg(&g, Algorithm::Generic { k: 2 }, seed)
            .matching
            .size();
        opt_total += blossom::max_matching(&g).size();
    }
    assert!(
        ii_total <= gen2_total,
        "II {ii_total} > generic {gen2_total}"
    );
    assert!(gen2_total <= opt_total);
}

#[test]
fn empty_and_tiny_graphs_are_handled_by_everyone() {
    for g in [
        Graph::new(0, vec![]),
        Graph::new(1, vec![]),
        Graph::new(2, vec![(0, 1)]),
    ] {
        let m = run_alg(&g, Algorithm::IsraeliItai, 0).matching;
        assert!(m.validate(&g).is_ok());
        let r = run_alg(&g, Algorithm::Generic { k: 2 }, 0);
        assert!(r.matching.validate(&g).is_ok());
        let r = Session::on(&g)
            .algorithm(Algorithm::General {
                k: 2,
                early_stop: None,
            })
            .sampling_iterations(4)
            .seed(0)
            .build()
            .run_to_completion();
        assert!(r.matching.validate(&g).is_ok());
        let r = run_alg(
            &g,
            Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: weighted::MwmBox::SeqClass,
            },
            0,
        );
        assert!(r.matching.validate(&g).is_ok());
        if g.m() == 1 {
            assert_eq!(r.matching.size(), 1, "a single edge must always be matched");
        }
    }
}
