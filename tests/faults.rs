//! Fault injection: the paper's model is synchronous and fault-free,
//! so liveness under message loss is out of scope — but *safety* must
//! survive: no protocol may ever output conflicting matched pairs.
//! These tests drive Israeli–Itai through a lossy network and check
//! that the agreed matching stays valid at any loss rate.

use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dgraph::generators::structured::complete;
use distributed_matching::dmatch::israeli_itai;

#[test]
fn agreed_matching_is_valid_at_every_loss_rate() {
    for &loss in &[0.0, 0.05, 0.2, 0.5, 0.9] {
        for seed in 0..5u64 {
            let g = gnp(40, 0.12, seed);
            // `lossy_matching` panics internally if the agreed pairs
            // were not a valid matching.
            let (m, dropped) = israeli_itai::lossy_matching(&g, seed, 60, loss);
            assert!(m.validate(&g).is_ok(), "loss {loss} seed {seed}");
            if loss == 0.0 {
                assert_eq!(dropped, 0);
            }
        }
    }
}

#[test]
fn zero_loss_agrees_with_reliable_truncation() {
    let g = gnp(30, 0.15, 7);
    let (lossless, _) = israeli_itai::lossy_matching(&g, 3, 30, 0.0);
    let (truncated, _) = israeli_itai::truncated_matching(&g, 3, 10);
    assert_eq!(lossless.size(), truncated.size());
}

#[test]
fn heavy_loss_still_matches_something_on_dense_graphs() {
    let g = complete(24);
    let (m, dropped) = israeli_itai::lossy_matching(&g, 11, 90, 0.3);
    assert!(dropped > 0, "loss must actually trigger");
    assert!(
        m.size() >= 1,
        "a dense graph under 30% loss still pairs nodes"
    );
}

#[test]
fn loss_only_shrinks_never_corrupts() {
    // Monotone safety: every agreed pair is a real edge and each node
    // appears at most once — already enforced by validate(); here we
    // additionally check agreement pairs survive across loss levels
    // qualitatively (sizes weakly decrease in expectation).
    let g = gnp(60, 0.1, 13);
    let mut sizes = Vec::new();
    for &loss in &[0.0, 0.3, 0.8] {
        let mut total = 0usize;
        for seed in 0..6u64 {
            let (m, _) = israeli_itai::lossy_matching(&g, seed, 45, loss);
            total += m.size();
        }
        sizes.push(total);
    }
    assert!(
        sizes[0] >= sizes[1] && sizes[1] >= sizes[2],
        "sizes {sizes:?} not decreasing"
    );
}
