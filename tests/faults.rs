//! Fault injection: the paper's model is synchronous and fault-free,
//! so liveness under faults is out of scope — but *safety* must
//! survive: no protocol may ever output conflicting matched pairs.
//!
//! These tests drive every `Algorithm` variant through the unified
//! adversary plane (`Session::adversary(FaultPlan)`) and check that
//!
//! * the output is a valid matching under message drop, bounded delay,
//!   partial delivery, bursty links, and crash-stop node faults;
//! * the deprecated `israeli_itai::lossy_matching` shim reproduces the
//!   pre-adversary implementation bit-for-bit (golden values);
//! * strict CONGEST enforcement catches real over-budget algorithms,
//!   while degrade mode completes the same configuration and accounts
//!   the overflow in `NetStats::deferred_bits`.

use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::structured::complete;
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::Graph;
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{israeli_itai, Algorithm, RunReport, Session};
use distributed_matching::simnet::{Budget, FaultPlan};

// ---------------------------------------------------------------------
// Legacy lossy Israeli–Itai (now a shim over the adversary plane).
// ---------------------------------------------------------------------

#[allow(deprecated)]
#[test]
fn agreed_matching_is_valid_at_every_loss_rate() {
    for &loss in &[0.0, 0.05, 0.2, 0.5, 0.9] {
        for seed in 0..5u64 {
            let g = gnp(40, 0.12, seed);
            let (m, dropped) = israeli_itai::lossy_matching(&g, seed, 60, loss);
            assert!(m.validate(&g).is_ok(), "loss {loss} seed {seed}");
            if loss == 0.0 {
                assert_eq!(dropped, 0);
            }
        }
    }
}

#[allow(deprecated)]
#[test]
fn zero_loss_agrees_with_reliable_truncation() {
    let g = gnp(30, 0.15, 7);
    let (lossless, _) = israeli_itai::lossy_matching(&g, 3, 30, 0.0);
    let (truncated, _) = israeli_itai::truncated_matching(&g, 3, 10);
    assert_eq!(lossless.size(), truncated.size());
}

#[allow(deprecated)]
#[test]
fn heavy_loss_still_matches_something_on_dense_graphs() {
    let g = complete(24);
    let (m, dropped) = israeli_itai::lossy_matching(&g, 11, 90, 0.3);
    assert!(dropped > 0, "loss must actually trigger");
    assert!(
        m.size() >= 1,
        "a dense graph under 30% loss still pairs nodes"
    );
}

#[allow(deprecated)]
#[test]
fn loss_only_shrinks_never_corrupts() {
    // Monotone safety: every agreed pair is a real edge and each node
    // appears at most once — already enforced by validate(); here we
    // additionally check agreement pairs survive across loss levels
    // qualitatively (sizes weakly decrease in expectation).
    let g = gnp(60, 0.1, 13);
    let mut sizes = Vec::new();
    for &loss in &[0.0, 0.3, 0.8] {
        let mut total = 0usize;
        for seed in 0..6u64 {
            let (m, _) = israeli_itai::lossy_matching(&g, seed, 45, loss);
            total += m.size();
        }
        sizes.push(total);
    }
    assert!(
        sizes[0] >= sizes[1] && sizes[1] >= sizes[2],
        "sizes {sizes:?} not decreasing"
    );
}

/// The shim must reproduce the retired bespoke implementation
/// **bit-for-bit**: these matchings and drop counts were captured from
/// the pre-adversary `lossy_matching` at the seeds this file uses.
#[allow(deprecated)]
#[test]
fn lossy_matching_shim_reproduces_legacy_golden_values() {
    struct Golden {
        g: Graph,
        seed: u64,
        rounds: u64,
        loss: f64,
        edges: &'static [u32],
        dropped: u64,
    }
    let cases = [
        Golden {
            g: gnp(40, 0.12, 0),
            seed: 0,
            rounds: 60,
            loss: 0.2,
            edges: &[
                54, 11, 42, 22, 7, 82, 29, 25, 10, 62, 53, 34, 75, 68, 89, 92,
            ],
            dropped: 40,
        },
        Golden {
            g: gnp(40, 0.12, 3),
            seed: 3,
            rounds: 60,
            loss: 0.5,
            edges: &[16, 42, 37, 72, 15, 89, 31, 62, 79, 68],
            dropped: 162,
        },
        Golden {
            g: gnp(40, 0.12, 4),
            seed: 4,
            rounds: 60,
            loss: 0.9,
            edges: &[76, 39],
            dropped: 351,
        },
        Golden {
            g: gnp(60, 0.1, 13),
            seed: 2,
            rounds: 45,
            loss: 0.3,
            edges: &[
                11, 170, 3, 136, 144, 56, 164, 123, 6, 64, 17, 83, 43, 112, 79, 90, 157, 54, 96,
                86, 122, 153, 178,
            ],
            dropped: 133,
        },
        Golden {
            g: gnp(60, 0.1, 13),
            seed: 5,
            rounds: 45,
            loss: 0.8,
            edges: &[24, 77, 16, 74, 161, 96],
            dropped: 396,
        },
        Golden {
            g: complete(24),
            seed: 11,
            rounds: 90,
            loss: 0.3,
            edges: &[5, 39, 46, 118, 186, 200, 244, 252, 275],
            dropped: 179,
        },
    ];
    for case in &cases {
        let (m, dropped) = israeli_itai::lossy_matching(&case.g, case.seed, case.rounds, case.loss);
        assert_eq!(
            m.edge_ids(&case.g),
            case.edges,
            "seed {} loss {}: matching diverged from the legacy implementation",
            case.seed,
            case.loss
        );
        assert_eq!(
            dropped, case.dropped,
            "seed {} loss {}: drop count diverged (drop RNG stream moved)",
            case.seed, case.loss
        );
    }
}

// ---------------------------------------------------------------------
// Adversary plane: every algorithm × every fault class.
// ---------------------------------------------------------------------

/// Every `Algorithm` variant (the same roster as `tests/prop_plane.rs`).
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::Bipartite { k: 2 },
        Algorithm::General {
            k: 2,
            early_stop: Some(4),
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::SeqClass,
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::ParClass,
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::LocalDominant,
        },
        Algorithm::DeltaMwm {
            mwm_box: MwmBox::LocalDominant,
        },
    ]
}

/// The satellite fault matrix: drop 20%, delay ≤ 3 rounds, 1%-per-round
/// crash with rejoin, and a kitchen-sink composition.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drop-0.2", FaultPlan::drop(0.2)),
        ("delay-3", FaultPlan::NONE.with_delay(3)),
        ("crash-1%", FaultPlan::NONE.with_crash(0.01, 6)),
        (
            "combined",
            FaultPlan::drop(0.1)
                .with_delay(2)
                .with_stall(0.1)
                .with_burst(0.05, 0.5)
                .with_crash(0.01, 4),
        ),
    ]
}

fn run_adversarial(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    plan: FaultPlan,
) -> RunReport {
    let mut b = Session::on(g).algorithm(alg).seed(seed).adversary(plan);
    if let Some(sides) = sides {
        b = b.sides(sides);
    }
    b.build().run_to_completion()
}

/// Safety under every fault class, for every algorithm of the paper:
/// the output is always a valid matching (conflicting or phantom pairs
/// never surface), and on a connected graph under these mild plans
/// something is still matched (weak liveness).
#[test]
fn every_algorithm_is_safe_under_every_fault_class() {
    let (gb, sides) = bipartite_gnp(12, 12, 0.3, 5);
    let inputs: Vec<(&str, Graph, Option<Vec<bool>>)> = vec![
        ("gnp", gnp(26, 0.18, 1), None),
        ("bipartite", gb, Some(sides)),
    ];
    for (label, g0, sides) in &inputs {
        for alg in algorithms() {
            if matches!(alg, Algorithm::Bipartite { .. }) && sides.is_none() {
                continue;
            }
            let g = if matches!(alg, Algorithm::Weighted { .. } | Algorithm::DeltaMwm { .. }) {
                apply_weights(g0, WeightModel::Uniform(0.5, 4.0), 9)
            } else {
                g0.clone()
            };
            for (plan_label, plan) in fault_plans() {
                let r = run_adversarial(&g, sides.as_deref(), alg, 17, plan);
                assert!(
                    r.matching.validate(&g).is_ok(),
                    "{label} / {alg:?} / {plan_label}: invalid matching under faults"
                );
                assert!(
                    r.matching.size() >= 1,
                    "{label} / {alg:?} / {plan_label}: nothing matched under a mild plan"
                );
            }
        }
    }
}

/// The fault gauges must reflect what the adversary actually did.
#[test]
fn fault_gauges_account_for_injected_faults() {
    let g = gnp(30, 0.2, 2);
    let r = run_adversarial(&g, None, Algorithm::IsraeliItai, 3, FaultPlan::drop(0.3));
    assert!(r.stats.dropped > 0, "drop plan must drop messages");
    assert_eq!(r.stats.delayed, 0);
    assert_eq!(r.stats.crashed, 0);

    let r = run_adversarial(
        &g,
        None,
        Algorithm::IsraeliItai,
        3,
        FaultPlan::NONE.with_delay(3),
    );
    assert!(r.stats.delayed > 0, "delay plan must park messages");
    assert_eq!(r.stats.dropped, 0);

    let r = run_adversarial(
        &g,
        None,
        Algorithm::IsraeliItai,
        3,
        FaultPlan::NONE.with_crash(0.3, 0),
    );
    assert!(r.stats.crashed > 0, "30%-per-round crashes must trigger");
}

/// A fault-free plan routed through the adversary plane is a no-op:
/// bit-identical to a plain run, all gauges zero.
#[test]
fn inactive_plan_is_bit_identical_to_fault_free() {
    let g = gnp(24, 0.2, 8);
    for alg in [Algorithm::IsraeliItai, Algorithm::Generic { k: 2 }] {
        let plain = Session::on(&g)
            .algorithm(alg)
            .seed(21)
            .build()
            .run_to_completion();
        let planned = run_adversarial(&g, None, alg, 21, FaultPlan::NONE);
        assert_eq!(plain.matching, planned.matching, "{alg:?}");
        assert_eq!(plain.stats, planned.stats, "{alg:?}");
        assert_eq!(planned.stats.dropped, 0);
        assert_eq!(planned.stats.delayed, 0);
        assert_eq!(planned.stats.crashed, 0);
        assert_eq!(planned.stats.deferred_bits, 0);
    }
}

// ---------------------------------------------------------------------
// CONGEST enforcement.
// ---------------------------------------------------------------------

/// Algorithm 1's ball-gathering messages are Θ(ball-size) bits — a real
/// CONGEST violation at a 64-bit budget, and the strict mode catches it
/// (this is the non-vacuity witness: the panic fires from an actual
/// protocol message, not a synthetic one).
#[test]
#[should_panic(expected = "CONGEST")]
fn strict_congest_catches_generic_ball_gathering() {
    let g = gnp(20, 0.25, 3);
    let plan = FaultPlan::NONE.with_budget(Budget::Bits(64)).strict();
    let _ = run_adversarial(&g, None, Algorithm::Generic { k: 2 }, 5, plan);
}

/// A 1-bit budget is below even Israeli–Itai's 2-bit messages.
#[test]
#[should_panic(expected = "CONGEST")]
fn strict_congest_catches_two_bit_messages_on_one_bit_edges() {
    let g = gnp(16, 0.25, 4);
    let plan = FaultPlan::NONE.with_budget(Budget::Bits(1)).strict();
    let _ = run_adversarial(&g, None, Algorithm::IsraeliItai, 5, plan);
}

/// Israeli–Itai's 2-bit messages fit the classical `O(log n)` budget:
/// the strict plan is *survived*, with a result identical to the
/// fault-free run (budget checks draw no RNG).
#[test]
fn israeli_itai_survives_strict_logn_budget() {
    let g = gnp(30, 0.15, 6);
    let plain = Session::on(&g).seed(9).build().run_to_completion();
    let plan = FaultPlan::NONE.with_budget(Budget::LogN(1)).strict();
    let strict = run_adversarial(&g, None, Algorithm::IsraeliItai, 9, plan);
    assert_eq!(plain.matching, strict.matching);
    assert_eq!(strict.stats.deferred_bits, 0);
}

/// Degrade mode completes the exact configuration strict mode panics
/// on: the overflow becomes extra latency, accounted bit-for-bit in
/// `deferred_bits`, and safety still holds.
#[test]
fn degrade_congest_completes_where_strict_panics() {
    let g = gnp(20, 0.25, 3);
    let plan = FaultPlan::NONE.with_budget(Budget::Bits(64));
    let r = run_adversarial(&g, None, Algorithm::Generic { k: 2 }, 5, plan);
    assert!(r.matching.validate(&g).is_ok());
    assert!(
        r.stats.deferred_bits > 0,
        "over-budget bits must be deferred, not teleported"
    );
}
