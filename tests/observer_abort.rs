//! `Observer::on_phase` → `Control::Abort` contract, for every
//! `Algorithm` variant.
//!
//! Aborting from a *phase* callback must stop the session at exactly
//! that phase boundary: the `step()` that completed the aborting phase
//! returns `Phase::Aborted` (the phase itself is still logged — phases
//! are atomic), the log is a prefix of the uninterrupted run's log
//! (phases are deterministic), the snapshot is internally consistent
//! (the matching validates against the graph and agrees with the last
//! phase's recorded cardinality, the statistics are the prefix sums),
//! and further `step()` calls stay `Phase::Aborted` without consuming
//! anything.

use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::Graph;
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{
    Algorithm, Control, Observer, Phase, PhaseEvent, PhaseInfo, Session,
};

/// Every `Algorithm` variant (as in `prop_session.rs`).
fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::Generic { k: 3 },
        Algorithm::Bipartite { k: 2 },
        Algorithm::General {
            k: 2,
            early_stop: Some(8),
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::SeqClass,
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::ParClass,
        },
        Algorithm::DeltaMwm {
            mwm_box: MwmBox::LocalDominant,
        },
    ]
}

fn needs_weights(alg: &Algorithm) -> bool {
    matches!(alg, Algorithm::Weighted { .. } | Algorithm::DeltaMwm { .. })
}

/// (graph, sides) for one connected test case.
fn case(alg: &Algorithm, seed: u64) -> (Graph, Option<Vec<bool>>) {
    if matches!(alg, Algorithm::Bipartite { .. }) {
        let (g, sides) = (0..)
            .map(|i| bipartite_gnp(10, 11, 0.4, seed + 1000 * i))
            .find(|(g, _)| g.components() == 1)
            .expect("a connected bipartite sample exists");
        (g, Some(sides))
    } else {
        let g = (0..)
            .map(|i| gnp(22, 0.22, seed + 1000 * i))
            .find(|g| g.components() == 1)
            .expect("a connected sample exists");
        if needs_weights(alg) {
            (
                apply_weights(&g, WeightModel::Uniform(0.5, 4.0), seed + 9),
                None,
            )
        } else {
            (g, None)
        }
    }
}

fn build(
    g: &Graph,
    alg: Algorithm,
    sides: Option<&[bool]>,
    obs: impl Observer + 'static,
) -> Session {
    let mut b = Session::on(g).algorithm(alg).seed(42).observe(obs);
    if let Some(s) = sides {
        b = b.sides(s);
    }
    b.build()
}

/// Aborts from `on_phase` once `cut` phases have completed, checking
/// the event's internal consistency on the way.
struct AbortAfterPhases {
    cut: usize,
    seen: usize,
}

impl Observer for AbortAfterPhases {
    fn on_phase(&mut self, ev: &PhaseEvent<'_>) -> Control {
        self.seen += 1;
        // The event must be self-consistent at the moment of the
        // decision: the matching it shows is valid and is the one the
        // log entry describes.
        ev.matching
            .validate(ev.graph)
            .expect("phase event matching");
        assert_eq!(ev.phase.matching_size, ev.matching.size());
        assert!(ev.stats.rounds >= ev.phase.rounds);
        if self.seen >= self.cut {
            Control::Abort
        } else {
            Control::Continue
        }
    }
}

/// Run to completion (observer present but never aborting, so the
/// per-phase consistency checks still fire); return log and messages.
fn full_run(g: &Graph, alg: Algorithm, sides: Option<&[bool]>) -> (Vec<PhaseInfo>, u64) {
    let mut s = build(
        g,
        alg,
        sides,
        AbortAfterPhases {
            cut: usize::MAX,
            seen: 0,
        },
    );
    s.run_to_completion();
    (s.phase_log().to_vec(), s.stats().messages)
}

#[test]
fn phase_abort_stops_every_algorithm_at_the_boundary() {
    for alg in all_algorithms() {
        let (g, sides) = case(&alg, 5);
        let (full, full_messages) = full_run(&g, alg, sides.as_deref());
        assert!(!full.is_empty(), "{alg}: no phases to cut");

        // Cut at the first, a middle, and the last boundary (aborting
        // on the final phase must still report Aborted, not Done).
        let mut cuts = vec![1, (full.len() / 2).max(1), full.len()];
        cuts.dedup();
        for cut in cuts {
            let mut s = build(&g, alg, sides.as_deref(), AbortAfterPhases { cut, seen: 0 });
            let mut ran = 0usize;
            let aborted = loop {
                match s.step() {
                    Phase::Ran(_) => ran += 1,
                    Phase::Aborted => break true,
                    Phase::Done => break false,
                }
                assert!(ran <= full.len(), "{alg}: runaway session");
            };
            assert!(aborted, "{alg}: cut {cut} of {} must abort", full.len());
            assert!(s.is_aborted());
            assert!(!s.is_done());

            // The aborting phase is logged but returned as Aborted:
            // `cut - 1` phases surfaced as Ran, `cut` are in the log,
            // and the log is a prefix of the uninterrupted run.
            assert_eq!(ran, cut - 1, "{alg}: abort lands on the boundary");
            assert_eq!(s.phase_log().len(), cut);
            for (got, expect) in s.phase_log().iter().zip(&full) {
                assert_eq!(got.label, expect.label, "{alg}");
                assert_eq!(got.rounds, expect.rounds, "{alg}");
                assert_eq!(got.matching_size, expect.matching_size, "{alg}");
            }

            // The snapshot is consistent: a valid matching of the
            // advertised size, statistics equal to the prefix sums.
            let snap = s.snapshot();
            snap.matching.validate(&g).expect("snapshot matching");
            assert_eq!(
                snap.matching.size(),
                s.phase_log().last().expect("cut >= 1").matching_size,
                "{alg}"
            );
            assert_eq!(snap.phases_done, cut, "{alg}");
            assert_eq!(
                snap.stats.rounds,
                s.phase_log().iter().map(|p| p.rounds).sum::<u64>(),
                "{alg}: snapshot rounds are the prefix sum"
            );
            assert!(snap.stats.messages <= full_messages, "{alg}");

            // Aborted is terminal and idempotent: stepping again does
            // nothing and consumes nothing.
            let rounds_before = s.stats().rounds;
            assert!(matches!(s.step(), Phase::Aborted));
            assert!(matches!(s.step(), Phase::Aborted));
            assert_eq!(s.stats().rounds, rounds_before);
            assert_eq!(s.phase_log().len(), cut);
        }
    }
}

#[test]
fn abort_on_first_phase_still_yields_a_valid_partial_matching() {
    for alg in all_algorithms() {
        let (g, sides) = case(&alg, 11);
        let mut s = build(
            &g,
            alg,
            sides.as_deref(),
            AbortAfterPhases { cut: 1, seen: 0 },
        );
        // cut = 1 aborts on the very first boundary: the first step()
        // already reports it.
        assert!(matches!(s.step(), Phase::Aborted));
        let snap = s.snapshot();
        snap.matching.validate(&g).expect("one-phase matching");
        assert_eq!(snap.phases_done, 1, "{alg}");
        assert!(s.is_aborted());
    }
}
