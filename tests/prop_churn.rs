//! Property suite for the dynamic-network engine (`dchurn`): after
//! every epoch the repaired matching is valid and meets its
//! algorithm's stated bound on the *current* graph, repair is
//! bit-identical sequential vs. 8-thread **and** dense vs. sparse
//! scheduling (the repair protocol sleeps through quiet rounds — churn
//! rewires and message arrivals are its only wake-ups, so this suite
//! exercises every wake path: rewire dirty sets, mail, and re-asserted
//! sleep), and repair beats full recompute at low churn (the E15
//! claim, asserted at test scale).

use distributed_matching::dchurn::{ChurnModel, DynEngine, MutationBatch, RepairAlgo};
use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dgraph::{blossom, Graph};
use simnet::ExecCfg;

#[test]
fn maximal_repair_holds_after_every_epoch_for_all_models() {
    for (seed, model) in [
        (1u64, ChurnModel::EdgeChurn { rate: 0.05 }),
        (2, ChurnModel::EdgeChurn { rate: 0.15 }),
        (
            3,
            ChurnModel::NodeChurn {
                rate: 0.06,
                degree: 5,
            },
        ),
        (4, ChurnModel::Rewire { rate: 0.1 }),
    ] {
        let g = gnp(220, 6.0 / 220.0, seed);
        let mut eng = DynEngine::new(g, model, RepairAlgo::IncrementalMaximal, seed + 50);
        let boot = eng.bootstrap().clone();
        assert!(boot.maximal);
        for epoch in 0..10 {
            let rep = eng.step_epoch().clone();
            assert!(rep.maximal, "model {model:?}, epoch {epoch}: not maximal");
            // Valid + maximal ⇒ the ½-MCM bound on the *current* graph.
            assert!(eng.matching().validate(eng.graph()).is_ok());
            assert!(eng.matching().is_maximal(eng.graph()));
            let opt = blossom::max_matching(eng.graph()).size();
            assert!(
                2 * eng.matching().size() >= opt,
                "model {model:?}, epoch {epoch}: below ½-MCM"
            );
            // The protocol's distributed liveness knowledge matches
            // ground truth at every epoch boundary.
            assert!(
                eng.check_liveness_invariant(),
                "model {model:?}, epoch {epoch}: stale liveness flags"
            );
        }
    }
}

#[test]
fn generic_repair_meets_its_bound_on_the_current_graph() {
    for k in [2usize, 3] {
        let g = gnp(70, 0.07, 9);
        let mut eng = DynEngine::new(
            g,
            ChurnModel::EdgeChurn { rate: 0.08 },
            RepairAlgo::IncrementalGeneric { k },
            33,
        );
        eng.bootstrap();
        let bound = 1.0 - 1.0 / (k as f64 + 1.0);
        for epoch in 0..6 {
            eng.step_epoch();
            assert!(eng.matching().validate(eng.graph()).is_ok());
            let opt = blossom::max_matching(eng.graph()).size();
            assert!(
                opt == 0 || eng.matching().size() as f64 >= bound * opt as f64 - 1e-9,
                "k={k}, epoch {epoch}: ratio {} < {bound}",
                eng.matching().size() as f64 / opt as f64
            );
        }
    }
}

#[test]
fn repair_is_bit_identical_across_executors_and_schedulers() {
    let run = |cfg: ExecCfg| {
        let g = gnp(260, 7.0 / 260.0, 12);
        let mut eng = DynEngine::with_cfg(
            g,
            ChurnModel::EdgeChurn { rate: 0.06 },
            RepairAlgo::IncrementalMaximal,
            77,
            cfg,
        );
        eng.bootstrap();
        for _ in 0..8 {
            eng.step_epoch();
        }
        let mates = eng.matching().mates().to_vec();
        let costs: Vec<(u64, u64, u64, u64, usize)> = eng
            .reports
            .iter()
            .map(|r| (r.epoch, r.rounds, r.messages, r.bits, r.woken))
            .collect();
        (mates, costs)
    };
    let (m1, c1) = run(ExecCfg::sequential());
    let (m8, c8) = run(ExecCfg::parallel(8));
    let (md, cd) = run(ExecCfg::sequential().dense());
    let (md8, cd8) = run(ExecCfg::parallel(8).dense());
    assert_eq!(m1, m8, "matchings diverged across thread counts");
    assert_eq!(c1, c8, "per-epoch costs diverged across thread counts");
    assert_eq!(m1, md, "matchings diverged across schedulers");
    assert_eq!(c1, cd, "per-epoch costs diverged across schedulers");
    assert_eq!(m1, md8, "matchings diverged (dense, 8 threads)");
    assert_eq!(c1, cd8, "per-epoch costs diverged (dense, 8 threads)");
}

#[test]
fn sparse_repair_steps_few_nodes_for_local_damage() {
    // The activity-driven scheduler's core claim at the engine level:
    // repairing one churned edge on a large cycle must *step* O(damage
    // ball) nodes per round after the sync round, not O(n). (Messages
    // were always local; node steps are what the sparse plane makes
    // local too.)
    let n = 400u32;
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    let g = Graph::new(n as usize, edges);
    let mut eng = DynEngine::new(g, ChurnModel::Trace, RepairAlgo::IncrementalMaximal, 5);
    eng.bootstrap();
    let steps_before = eng.net_stats().expect("maximal variant").node_steps;
    let (u, v) = (0..n)
        .find_map(|v| {
            eng.matching()
                .mate(v)
                .filter(|&m| m == v + 1)
                .map(|m| (v, m))
        })
        .expect("some consecutive matched pair");
    let rep = eng
        .step_with(MutationBatch {
            added: vec![],
            removed: vec![(u, v)],
        })
        .clone();
    assert!(rep.maximal);
    let stats = eng.net_stats().expect("maximal variant");
    let epoch_steps = stats.node_steps - steps_before;
    assert!(
        epoch_steps <= 12 * rep.rounds,
        "{epoch_steps} node steps over {} rounds to repair one edge — \
         the sparse plane should keep the per-round active set near the damage",
        rep.rounds
    );
}

#[test]
fn repair_beats_full_recompute_at_low_churn() {
    // The E15 claim at test scale: at ≤5% churn per epoch, repairing
    // costs asymptotically fewer rounds + messages than recomputing.
    let g = gnp(600, 6.0 / 600.0, 21);
    let mut eng = DynEngine::new(
        g,
        ChurnModel::EdgeChurn { rate: 0.05 },
        RepairAlgo::IncrementalMaximal,
        99,
    );
    eng.bootstrap();
    let (mut repair_rounds, mut repair_msgs) = (0u64, 0u64);
    let (mut recompute_rounds, mut recompute_msgs) = (0u64, 0u64);
    for _ in 0..8 {
        let rep = eng.step_epoch().clone();
        repair_rounds += rep.rounds;
        repair_msgs += rep.messages;
        let (fresh, stats) = eng.recompute_baseline();
        assert!(fresh.is_maximal(eng.graph()));
        recompute_rounds += stats.rounds;
        recompute_msgs += stats.messages;
    }
    assert!(
        2 * repair_msgs < recompute_msgs,
        "repair sent {repair_msgs} messages vs {recompute_msgs} for recompute"
    );
    assert!(
        repair_rounds < recompute_rounds,
        "repair used {repair_rounds} rounds vs {recompute_rounds} for recompute"
    );
}

#[test]
fn repair_stays_local_and_trace_replay_is_exact() {
    // Deterministic trace on a long cycle: churn one matched edge far
    // from everything else; repair must stay in a small ball and the
    // rest of the matching must be untouched.
    let n = 300u32;
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    let g = Graph::new(n as usize, edges);
    let mut eng = DynEngine::new(g, ChurnModel::Trace, RepairAlgo::IncrementalMaximal, 5);
    eng.bootstrap();
    let before = eng.matching().clone();
    let (u, v) = (0..n)
        .find_map(|v| {
            eng.matching()
                .mate(v)
                .filter(|&m| m == v + 1)
                .map(|m| (v, m))
        })
        .expect("some consecutive matched pair");
    let rep = eng
        .step_with(MutationBatch {
            added: vec![],
            removed: vec![(u, v)],
        })
        .clone();
    assert!(rep.maximal);
    assert_eq!(rep.invalidated, 1);
    if let Some(r) = rep.locality_radius {
        assert!(r <= 8, "repair wandered {r} hops from one lost edge");
    }
    assert!(
        rep.woken <= 24,
        "{} nodes spoke to repair one lost edge on a cycle",
        rep.woken
    );
    // Far from the damage the matching is bitwise untouched.
    let far = |x: u32| {
        let d = x.abs_diff(u).min(n - x.abs_diff(u));
        d > 20
    };
    for x in (0..n).filter(|&x| far(x)) {
        assert_eq!(
            eng.matching().mate(x),
            before.mate(x),
            "node {x} far from damage changed its mate"
        );
    }
    // Replaying the identical trace reproduces the identical run.
    let mut eng2 = DynEngine::new(
        Graph::new(n as usize, {
            let mut e: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            e.push((n - 1, 0));
            e
        }),
        ChurnModel::Trace,
        RepairAlgo::IncrementalMaximal,
        5,
    );
    eng2.bootstrap();
    eng2.step_with(MutationBatch {
        added: vec![],
        removed: vec![(u, v)],
    });
    assert_eq!(eng.matching().mates(), eng2.matching().mates());
}

#[test]
fn empty_and_degenerate_graphs_survive_epochs() {
    for g in [Graph::new(0, vec![]), Graph::new(5, vec![])] {
        let n = g.n();
        let mut eng = DynEngine::new(
            g,
            ChurnModel::EdgeChurn { rate: 0.5 },
            RepairAlgo::IncrementalMaximal,
            1,
        );
        let boot = eng.bootstrap().clone();
        assert_eq!(boot.matching_size, 0);
        for _ in 0..3 {
            let rep = eng.step_epoch().clone();
            assert!(rep.maximal);
            assert_eq!(eng.graph().n(), n);
        }
    }
}
