//! Regression tests for the paper's two figures (the worked examples
//! of experiments E2 and E6).

use distributed_matching::dgraph::{Graph, Matching};
use distributed_matching::dmatch::bipartite::{count, SubgraphSpec};
use distributed_matching::dmatch::weighted::{apply_wraps, derived_weight};

/// E2 / Figure 1: the counting BFS layer values on the fixed instance
/// used by `exp_e2_figure1` must never change.
#[test]
fn figure1_layer_counts() {
    let edges = vec![
        (0u32, 5u32),
        (0, 6),
        (0, 7),
        (1, 6),
        (1, 7),
        (2, 6),
        (3, 7),
        (4, 8),
        (2, 9),
        (3, 9),
        (2, 8),
        (4, 9),
    ];
    let g = Graph::new(10, edges);
    let sides: Vec<bool> = (0..10).map(|v| v >= 5).collect();
    let m = Matching::from_edges(
        &g,
        &[
            g.edge_between(2, 6).unwrap(),
            g.edge_between(3, 7).unwrap(),
            g.edge_between(4, 8).unwrap(),
        ],
    );
    let spec = SubgraphSpec::full_bipartite(&g, &sides);
    let pass = count::run(&g, &m, &spec, 5, 0);

    // Layers: free X {0,1} at d=0; Y {5,6,7} at d=1 with counts 1,2,2;
    // X {2,3} at d=2 with 2,2; Y {8,9} at d=3 with 2,4; X {4} at d=4.
    assert_eq!(pass.dist[0], Some(0));
    assert_eq!(pass.dist[1], Some(0));
    assert_eq!(pass.total[5], 1);
    assert_eq!(pass.total[6], 2);
    assert_eq!(pass.total[7], 2);
    assert_eq!(pass.dist[6], Some(1));
    assert_eq!(pass.total[2], 2);
    assert_eq!(pass.total[3], 2);
    assert_eq!(pass.dist[2], Some(2));
    assert_eq!(pass.total[8], 2);
    assert_eq!(pass.total[9], 4);
    assert_eq!(pass.dist[9], Some(3));
    assert_eq!(pass.dist[4], Some(4));
    assert_eq!(pass.leaders, 2, "free Y nodes 5 and 9 are reached");
}

/// E6 / Figure 2: the exact headline numbers 14 → 10 → 26, with the
/// strict inequality coming from wraps overlapping at an M edge.
#[test]
fn figure2_numbers() {
    let g = Graph::with_weights(
        6,
        vec![(1, 2), (4, 5), (0, 1), (2, 3)],
        vec![2.0, 12.0, 6.0, 8.0],
    );
    let m = Matching::from_edges(&g, &[0, 1]);
    assert_eq!(m.weight(&g), 14.0, "top panel: w(M) = 14");

    let wm1 = derived_weight(&g, &m, 2);
    let wm2 = derived_weight(&g, &m, 3);
    assert_eq!(wm1 + wm2, 10.0, "middle panel: w_M(M') = 10");

    let (m2, realized) = apply_wraps(&g, &m, &[2, 3]);
    assert_eq!(m2.weight(&g), 26.0, "bottom panel: w(M'') = 26");
    assert!(m2.validate(&g).is_ok());
    assert!(
        realized > wm1 + wm2,
        "strict: overlapping wraps double-count the shared M edge"
    );
    assert_eq!(realized, 12.0);
}

/// Figure 2's inequality direction can never flip: w(M'') ≥ w(M) + w_M(M').
#[test]
fn figure2_inequality_is_lemma_4_1() {
    let g = Graph::with_weights(
        6,
        vec![(1, 2), (4, 5), (0, 1), (2, 3)],
        vec![2.0, 12.0, 6.0, 8.0],
    );
    let m = Matching::from_edges(&g, &[0, 1]);
    for subset in [vec![2u32], vec![3u32], vec![2, 3]] {
        let wm: f64 = subset.iter().map(|&e| derived_weight(&g, &m, e)).sum();
        let (m2, realized) = apply_wraps(&g, &m, &subset);
        assert!(m2.validate(&g).is_ok());
        assert!(realized >= wm - 1e-9, "subset {subset:?}");
    }
}
