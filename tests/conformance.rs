//! The zoo conformance matrix: every `Algorithm` variant × every zoo
//! topology family × {Oracle, Honest} termination × {sequential,
//! 4-thread} execution.
//!
//! Per cell the suite asserts the full conformance contract:
//!
//! * **validity** — the output is a matching of the input graph;
//! * **the paper's approximation bound** against the exact oracle
//!   (Edmonds blossom for cardinality, exact/Hungarian MWM for
//!   weight) — the *graph-universal* guarantees of Theorems 3.1,
//!   3.8, 4.5 and maximality, now exercised on heavy-tailed,
//!   geometric, regular, and Zipf-skewed inputs instead of only
//!   Erdős–Rényi;
//! * **executor bit-identity** — the sequential and the 4-thread run
//!   agree on the matching *and* the full `NetStats` trace, in both
//!   termination modes.
//!
//! `Algorithm::Bipartite` needs a bipartition; on families that do
//! not carry one it runs on the family's *bipartite double cover*
//! ([`bipartite::double_cover`]), which preserves every degree — the
//! hub of a heavy-tailed family stays a hub in the cover.
//!
//! Honest termination runs a convergecast over the whole topology, so
//! fixtures are restricted to their giant component (Zipf columns and
//! sparse geometric samples leave isolated vertices behind).

use bench_harness::workloads::Family;
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{bipartite, blossom, Graph, NodeId};
use distributed_matching::dmatch::runner::mwm_reference;
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{Algorithm, RunReport, Session, TerminationMode};
use distributed_matching::simnet::ExecCfg;

/// Node budget of the cardinality fixtures.
const N: usize = 26;
/// Node budget of the weighted fixtures — small enough for the exact
/// (bitmask-DP) MWM oracle on non-bipartite families.
const N_WEIGHTED: usize = 16;

/// Restrict `g` (and `sides`) to its largest connected component,
/// relabelling nodes in increasing old-id order.
fn giant_component(g: &Graph, sides: Option<&[bool]>) -> (Graph, Option<Vec<bool>>) {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut comps = 0usize;
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = comps;
        let mut queue = std::collections::VecDeque::from([s as NodeId]);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in g.incident(v) {
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = comps;
                    queue.push_back(u);
                }
            }
        }
        comps += 1;
    }
    let mut sizes = vec![0usize; comps];
    for &c in &comp {
        sizes[c] += 1;
    }
    let big = (0..comps).max_by_key(|&c| sizes[c]).expect("non-empty");
    let mut remap = vec![UNMAPPED; n];
    let mut kept = 0u32;
    for v in 0..n {
        if comp[v] == big {
            remap[v] = kept;
            kept += 1;
        }
    }
    const UNMAPPED: u32 = u32::MAX;
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    for (e, &(u, v)) in g.edge_list().iter().enumerate() {
        if remap[u as usize] != UNMAPPED && remap[v as usize] != UNMAPPED {
            edges.push((remap[u as usize], remap[v as usize]));
            weights.push(g.weight(e as u32));
        }
    }
    let new_sides = sides.map(|s| {
        (0..n)
            .filter(|&v| remap[v] != UNMAPPED)
            .map(|v| s[v])
            .collect()
    });
    (
        Graph::with_weights(kept as usize, edges, weights),
        new_sides,
    )
}

/// Deterministic fixture for a family: instantiated at `n`, restricted
/// to the giant component (Honest mode convergecasts over the whole
/// topology, so the fixture must be connected).
fn fixture(family: Family, n: usize, seed: u64) -> (Graph, Option<Vec<bool>>) {
    let w = family.instantiate(n, seed);
    let (g, sides) = giant_component(&w.graph, w.sides.as_deref());
    assert!(
        g.n() >= n / 2,
        "{family}: giant component too small ({} of {n}) for a meaningful fixture",
        g.n()
    );
    (g, sides)
}

fn run(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    termination: TerminationMode,
    cfg: ExecCfg,
) -> RunReport {
    let mut b = Session::on(g)
        .algorithm(alg)
        .seed(seed)
        .termination(termination)
        .exec(cfg);
    if let Some(sides) = sides {
        b = b.sides(sides);
    }
    b.build().run_to_completion()
}

/// One conformance cell: validity + bound + seq/4-thread bit-identity
/// in both termination modes. `bound` is a fraction of `opt` (the
/// exact cardinality optimum); weighted cells assert separately.
fn assert_cell(
    label: &str,
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    bound: f64,
    opt: usize,
) {
    for termination in [TerminationMode::Oracle, TerminationMode::Honest] {
        let seq = run(g, sides, alg, 7, termination, ExecCfg::sequential());
        assert!(
            seq.matching.validate(g).is_ok(),
            "{label} [{termination:?}]: invalid matching"
        );
        assert!(
            seq.matching.size() as f64 >= bound * opt as f64 - 1e-9,
            "{label} [{termination:?}]: {} below {bound}·{opt}",
            seq.matching.size()
        );
        let par = run(g, sides, alg, 7, termination, ExecCfg::parallel(4));
        assert_eq!(
            seq.matching, par.matching,
            "{label} [{termination:?}]: executor changed the matching"
        );
        assert_eq!(
            seq.stats, par.stats,
            "{label} [{termination:?}]: executor changed the statistics trace"
        );
        assert_eq!(
            seq.oracle_checks, par.oracle_checks,
            "{label} [{termination:?}]"
        );
    }
}

/// The cardinality algorithm matrix on one family.
fn conformance_for(family: Family) {
    let (g, sides) = fixture(family, N, 3);
    let opt = blossom::max_matching(&g).size();

    // Maximality ⇒ ½; Theorem 3.1 ⇒ 1 - 1/(k+1); Algorithm 4 is ½ by
    // maximality (its (1-1/k) claim is only whp, so the suite pins
    // the deterministic floor and relies on E18 for the typical case).
    let cardinality: [(Algorithm, f64); 5] = [
        (Algorithm::IsraeliItai, 0.5),
        (Algorithm::Generic { k: 2 }, 2.0 / 3.0),
        (Algorithm::Generic { k: 3 }, 3.0 / 4.0),
        (
            Algorithm::General {
                k: 2,
                early_stop: Some(8),
            },
            0.5,
        ),
        (
            Algorithm::General {
                k: 3,
                early_stop: Some(8),
            },
            0.5,
        ),
    ];
    for (alg, bound) in cardinality {
        assert_cell(
            &format!("{family}/{alg}"),
            &g,
            sides.as_deref(),
            alg,
            bound,
            opt,
        );
    }

    // Theorem 3.8 needs a bipartition: native for bipartite families,
    // the degree-preserving double cover otherwise.
    let (bg, bsides) = match &sides {
        Some(s) => (g.clone(), s.clone()),
        None => bipartite::double_cover(&g),
    };
    let bopt = blossom::max_matching(&bg).size();
    for k in [2usize, 3] {
        assert_cell(
            &format!("{family}/bipartite(k={k})"),
            &bg,
            Some(&bsides),
            Algorithm::Bipartite { k },
            1.0 - 1.0 / k as f64,
            bopt,
        );
    }

    // The weighted algorithms, against the exact MWM oracle (bitmask
    // DP / Hungarian — hence the smaller fixture).
    let (gw0, wsides) = fixture(family, N_WEIGHTED, 3);
    let gw = apply_weights(&gw0, WeightModel::Uniform(0.5, 4.0), 11);
    let wopt = mwm_reference(&gw, wsides.as_deref());
    let eps = 0.25;
    let weighted: [(Algorithm, f64); 2] = [
        (
            Algorithm::Weighted {
                epsilon: eps,
                mwm_box: MwmBox::SeqClass,
            },
            0.5 - eps,
        ),
        (
            Algorithm::DeltaMwm {
                mwm_box: MwmBox::LocalDominant,
            },
            MwmBox::LocalDominant.nominal_delta(),
        ),
    ];
    for (alg, bound) in weighted {
        for termination in [TerminationMode::Oracle, TerminationMode::Honest] {
            let label = format!("{family}/{alg} [{termination:?}]");
            let seq = run(
                &gw,
                wsides.as_deref(),
                alg,
                7,
                termination,
                ExecCfg::sequential(),
            );
            assert!(seq.matching.validate(&gw).is_ok(), "{label}: invalid");
            assert!(
                seq.matching.weight(&gw) >= bound * wopt - 1e-9,
                "{label}: weight {} below {bound}·{wopt}",
                seq.matching.weight(&gw)
            );
            let par = run(
                &gw,
                wsides.as_deref(),
                alg,
                7,
                termination,
                ExecCfg::parallel(4),
            );
            assert_eq!(seq.matching, par.matching, "{label}: executor identity");
            assert_eq!(seq.stats, par.stats, "{label}: stats identity");
        }
    }
}

#[test]
fn conformance_barabasi_albert() {
    conformance_for(Family::BarabasiAlbert);
}

#[test]
fn conformance_chung_lu() {
    conformance_for(Family::ChungLu);
}

#[test]
fn conformance_geometric() {
    conformance_for(Family::Geometric);
}

#[test]
fn conformance_d_regular() {
    conformance_for(Family::DRegular);
}

#[test]
fn conformance_zipf_bipartite() {
    conformance_for(Family::ZipfBipartite);
}

/// The legacy baseline stays in the matrix so a zoo regression can be
/// told apart from an algorithm regression.
#[test]
fn conformance_gnp_baseline() {
    conformance_for(Family::Gnp);
}

/// The full scheduler matrix on the Chung–Lu hub fixture: {sequential,
/// 2 threads, 8 threads} × {sparse, dense, hybrid} must agree with the
/// sequential sparse reference on the matching and on the complete
/// `NetStats` trace minus the sanctioned exemptions (`sched_overhead`,
/// wall-clock `timings`). Threaded runs force real fan-out so the
/// degree-weighted chunker actually has to split around the hub, which
/// is the case contiguous equal-count chunking got wrong.
#[test]
fn chung_lu_hub_scheduler_matrix() {
    let (g, sides) = fixture(Family::ChungLu, N, 3);
    let hub_deg = g.max_degree();
    assert!(
        hub_deg * g.n() >= 2 * 2 * g.m(),
        "fixture hub too mild (max degree {hub_deg}, avg {:.1})",
        2.0 * g.m() as f64 / g.n() as f64
    );
    let masked = |stats: &distributed_matching::simnet::NetStats| {
        let mut s = stats.clone();
        s.sched_overhead = 0;
        s.timings = Default::default();
        for r in &mut s.per_round {
            r.sched_overhead = 0;
        }
        s
    };
    type SchedFn = fn(ExecCfg) -> ExecCfg;
    let scheds: [(&str, SchedFn); 3] = [
        ("sparse", |c| c),
        ("dense", ExecCfg::dense),
        ("hybrid", ExecCfg::hybrid),
    ];
    for alg in [Algorithm::IsraeliItai, Algorithm::Generic { k: 2 }] {
        let reference = run(
            &g,
            sides.as_deref(),
            alg,
            7,
            TerminationMode::Oracle,
            ExecCfg::sequential(),
        );
        assert!(reference.matching.validate(&g).is_ok(), "{alg}");
        for (sched_label, sched_of) in scheds {
            let execs = [
                sched_of(ExecCfg::sequential()),
                sched_of(ExecCfg::parallel(2)).forced(),
                sched_of(ExecCfg::parallel(8)).forced(),
            ];
            for cfg in execs {
                let r = run(&g, sides.as_deref(), alg, 7, TerminationMode::Oracle, cfg);
                let label = format!("chung-lu hub / {alg} / {sched_label} / {cfg:?}");
                assert_eq!(reference.matching, r.matching, "{label}: matching");
                assert_eq!(masked(&reference.stats), masked(&r.stats), "{label}: stats");
            }
        }
    }
}

/// Double covers preserve the degree sequence — the property that
/// makes them a faithful bipartite incarnation of heavy-tailed
/// families for Theorem 3.8.
#[test]
fn double_cover_keeps_the_hubs() {
    let (g, _) = fixture(Family::ChungLu, N, 3);
    let (cover, sides) = bipartite::double_cover(&g);
    assert!(bipartite::is_valid_bipartition(&cover, &sides));
    assert_eq!(cover.max_degree(), g.max_degree());
    assert_eq!(cover.m(), 2 * g.m());
}

/// The adversary axis of the conformance matrix: zoo families ×
/// representative fault plans. Per cell: the output is still a valid
/// matching (safety survives on heavy-tailed and geometric topologies,
/// not just Erdős–Rényi), and the sequential and 4-thread executions
/// stay bit-identical under the active adversary (the fault RNG
/// streams are executor-invariant). Kept to two families × two plans ×
/// two algorithms so the matrix stays CI-cheap.
#[test]
fn adversary_axis_on_the_zoo() {
    use distributed_matching::simnet::FaultPlan;
    let plans: [(&str, FaultPlan); 2] = [
        ("drop-0.2", FaultPlan::drop(0.2)),
        (
            "delay-2+crash-1%",
            FaultPlan::NONE.with_delay(2).with_crash(0.01, 5),
        ),
    ];
    for family in [Family::BarabasiAlbert, Family::Geometric] {
        let (g, sides) = fixture(family, N, 3);
        for alg in [Algorithm::IsraeliItai, Algorithm::Generic { k: 2 }] {
            for (plan_label, plan) in &plans {
                let mk = |threads: usize| ExecCfg::parallel(threads).with_faults(*plan);
                let seq = run(&g, sides.as_deref(), alg, 7, TerminationMode::Oracle, mk(1));
                let label = format!("{family}/{alg}/{plan_label}");
                assert!(
                    seq.matching.validate(&g).is_ok(),
                    "{label}: invalid matching under faults"
                );
                let par = run(&g, sides.as_deref(), alg, 7, TerminationMode::Oracle, mk(4));
                assert_eq!(
                    seq.matching, par.matching,
                    "{label}: executor changed the faulty matching"
                );
                assert_eq!(
                    seq.stats, par.stats,
                    "{label}: executor changed the faulty statistics trace"
                );
            }
        }
    }
}
