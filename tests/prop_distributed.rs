//! Property-based tests for the distributed algorithms themselves:
//! guarantee, validity, determinism, and CONGEST message discipline on
//! randomized inputs.

use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{blossom, hopcroft_karp};
use distributed_matching::dmatch::{general, israeli_itai, luby, weighted};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Israeli–Itai is always a valid maximal matching with 2-bit
    /// messages, regardless of input or seed.
    #[test]
    fn ii_maximal_valid_and_tiny_messages(n in 2usize..40, pm in 5u32..50, seed in 0u64..10_000) {
        let g = gnp(n, pm as f64 / 100.0, seed);
        let (m, stats) = israeli_itai::maximal_matching(&g, seed ^ 0xABCD);
        prop_assert!(m.validate(&g).is_ok());
        prop_assert!(m.is_maximal(&g));
        prop_assert!(stats.max_msg_bits <= 2);
    }

    /// Luby MIS on an arbitrary topology is independent and dominating.
    #[test]
    fn luby_mis_valid(n in 1usize..40, pm in 5u32..60, seed in 0u64..10_000) {
        let g = gnp(n, pm as f64 / 100.0, seed);
        let topo = distributed_matching::dmatch::topology_of(&g);
        let (flags, _) = luby::mis(&topo, seed);
        prop_assert!(luby::is_valid_mis(&topo, &flags));
    }

    /// Theorem 3.8's guarantee holds for every bipartite input: ratio
    /// ≥ 1-1/k, no augmenting path of length ≤ 2k-1 survives, and
    /// messages stay under 100 bits.
    #[test]
    fn bipartite_guarantee_and_congest(a in 2usize..12, b in 2usize..12, pm in 10u32..55, k in 1usize..4, seed in 0u64..10_000) {
        let (g, sides) = bipartite_gnp(a, b, pm as f64 / 100.0, seed);
        let out = distributed_matching::dmatch::bipartite::run(&g, &sides, k, seed);
        prop_assert!(out.matching.validate(&g).is_ok());
        let opt = hopcroft_karp::max_matching(&g, &sides).size();
        prop_assert!(
            out.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
            "k={} |M|={} opt={}", k, out.matching.size(), opt
        );
        prop_assert!(out.stats.max_msg_bits <= 98 + 30);
    }

    /// Algorithm 4 with the full paper budget never dips below the
    /// whp bound on small inputs (k = 2 keeps the budget tractable).
    #[test]
    fn general_holds_with_paper_budget(n in 4usize..16, pm in 15u32..50, seed in 0u64..10_000) {
        let g = gnp(n, pm as f64 / 100.0, seed);
        let r = general::run(&g, 2, seed); // full 2^5·3·ln2 ≈ 67 iterations
        prop_assert!(r.matching.validate(&g).is_ok());
        let opt = blossom::max_matching(&g).size();
        prop_assert!(2 * r.matching.size() >= opt);
    }

    /// Algorithm 5's weight trajectory is monotone and the final
    /// matching is valid for every box.
    #[test]
    fn weighted_monotone_and_valid(n in 4usize..18, pm in 15u32..50, seed in 0u64..10_000, box_idx in 0usize..3) {
        let mwm_box = [weighted::MwmBox::SeqClass, weighted::MwmBox::ParClass, weighted::MwmBox::LocalDominant][box_idx];
        let g = apply_weights(&gnp(n, pm as f64 / 100.0, seed), WeightModel::Exponential(1.0), seed + 2);
        let r = weighted::run(&g, 0.2, mwm_box, seed);
        prop_assert!(r.matching.validate(&g).is_ok());
        for w in r.weights.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
    }

    /// Determinism: identical (graph, seed) inputs give identical
    /// results and statistics for the randomized algorithms.
    #[test]
    fn runs_are_reproducible(n in 4usize..25, pm in 10u32..40, seed in 0u64..10_000) {
        let g = gnp(n, pm as f64 / 100.0, seed);
        let (m1, s1) = israeli_itai::maximal_matching(&g, seed);
        let (m2, s2) = israeli_itai::maximal_matching(&g, seed);
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(s1.rounds, s2.rounds);
        prop_assert_eq!(s1.bits, s2.bits);

        let r1 = general::run_with(&g, 2, seed, general::GeneralOpts { iterations: Some(6), early_stop_after: None });
        let r2 = general::run_with(&g, 2, seed, general::GeneralOpts { iterations: Some(6), early_stop_after: None });
        prop_assert_eq!(r1.matching, r2.matching);
        prop_assert_eq!(r1.stats.messages, r2.stats.messages);
    }

    /// The derived-gain graph never contains matching edges, and
    /// applying any matching of it through wraps keeps validity
    /// (Lemma 4.1, randomized).
    #[test]
    fn derived_graph_and_wraps_sound(n in 4usize..16, pm in 20u32..60, seed in 0u64..10_000) {
        let g = apply_weights(&gnp(n, pm as f64 / 100.0, seed), WeightModel::Integer(1, 12), seed + 3);
        let m = distributed_matching::dgraph::greedy::greedy_maximal(&g);
        let (gp, back) = weighted::derived_graph(&g, &m);
        for e in 0..gp.m() as u32 {
            prop_assert!(!m.contains(&g, back[e as usize]));
            prop_assert!(gp.weight(e) > 0.0);
        }
        let mp = distributed_matching::dgraph::greedy::greedy_by_weight(&gp);
        let mprime: Vec<u32> = mp.edge_ids(&gp).iter().map(|&e| back[e as usize]).collect();
        let wm: f64 = mprime.iter().map(|&e| weighted::derived_weight(&g, &m, e)).sum();
        let (m2, realized) = weighted::apply_wraps(&g, &m, &mprime);
        prop_assert!(m2.validate(&g).is_ok());
        prop_assert!(realized >= wm - 1e-9);
    }
}
