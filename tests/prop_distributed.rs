//! Randomized property tests for the distributed algorithms themselves:
//! guarantee, validity, determinism, and CONGEST message discipline on
//! randomized inputs.
//!
//! Dependency-free: cases are enumerated from seeded `SplitMix64`
//! streams, so every run explores the same (deterministic) case set.

use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{blossom, hopcroft_karp};
use distributed_matching::dmatch::{luby, weighted, Algorithm, ConvergenceCurve, Session};
use distributed_matching::simnet::SplitMix64;

/// Deterministic parameter stream: (n, edge probability, seed).
fn cases(tag: u64, count: usize, n_lo: usize, n_hi: usize) -> Vec<(usize, f64, u64)> {
    let mut rng = SplitMix64::new(0xD157 ^ tag);
    (0..count)
        .map(|_| {
            let n = n_lo + rng.below((n_hi - n_lo) as u64) as usize;
            let p = (5 + rng.below(45)) as f64 / 100.0;
            (n, p, rng.next())
        })
        .collect()
}

/// Israeli–Itai is always a valid maximal matching with 2-bit
/// messages, regardless of input or seed.
#[test]
fn ii_maximal_valid_and_tiny_messages() {
    for (n, p, seed) in cases(1, 32, 2, 40) {
        let g = gnp(n, p, seed);
        let r = Session::on(&g)
            .algorithm(Algorithm::IsraeliItai)
            .seed(seed ^ 0xABCD)
            .build()
            .run_to_completion();
        assert!(r.matching.validate(&g).is_ok());
        assert!(r.matching.is_maximal(&g));
        assert!(r.stats.max_msg_bits <= 2);
    }
}

/// Luby MIS on an arbitrary topology is independent and dominating.
#[test]
fn luby_mis_valid() {
    for (n, p, seed) in cases(2, 32, 1, 40) {
        let g = gnp(n, p, seed);
        let topo = distributed_matching::dmatch::topology_of(&g);
        let (flags, _) = luby::mis(&topo, seed);
        assert!(luby::is_valid_mis(&topo, &flags));
    }
}

/// Theorem 3.8's guarantee holds for every bipartite input: ratio
/// ≥ 1-1/k, no augmenting path of length ≤ 2k-1 survives, and
/// messages stay under 100 bits.
#[test]
fn bipartite_guarantee_and_congest() {
    let mut rng = SplitMix64::new(0xD157 ^ 3);
    for _ in 0..32 {
        let a = 2 + rng.below(10) as usize;
        let b = 2 + rng.below(10) as usize;
        let p = (10 + rng.below(45)) as f64 / 100.0;
        let k = 1 + rng.below(3) as usize;
        let seed = rng.next();
        let (g, sides) = bipartite_gnp(a, b, p, seed);
        let out = Session::on(&g)
            .algorithm(Algorithm::Bipartite { k })
            .sides(&sides)
            .seed(seed)
            .build()
            .run_to_completion();
        assert!(out.matching.validate(&g).is_ok());
        let opt = hopcroft_karp::max_matching(&g, &sides).size();
        assert!(
            out.matching.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
            "k={} |M|={} opt={}",
            k,
            out.matching.size(),
            opt
        );
        assert!(out.stats.max_msg_bits <= 98 + 30);
    }
}

/// Algorithm 4 with the full paper budget never dips below the
/// whp bound on small inputs (k = 2 keeps the budget tractable).
#[test]
fn general_holds_with_paper_budget() {
    for (n, p, seed) in cases(4, 16, 4, 16) {
        let p = p.max(0.15);
        let g = gnp(n, p, seed);
        // Full paper budget: 2^5·3·ln2 ≈ 67 iterations.
        let r = Session::on(&g)
            .algorithm(Algorithm::General {
                k: 2,
                early_stop: None,
            })
            .seed(seed)
            .build()
            .run_to_completion();
        assert!(r.matching.validate(&g).is_ok());
        let opt = blossom::max_matching(&g).size();
        assert!(2 * r.matching.size() >= opt);
    }
}

/// Algorithm 5's weight trajectory is monotone and the final
/// matching is valid for every box.
#[test]
fn weighted_monotone_and_valid() {
    let boxes = [
        weighted::MwmBox::SeqClass,
        weighted::MwmBox::ParClass,
        weighted::MwmBox::LocalDominant,
    ];
    for (i, (n, p, seed)) in cases(5, 18, 4, 18).into_iter().enumerate() {
        let mwm_box = boxes[i % 3];
        let p = p.max(0.15);
        let g = apply_weights(&gnp(n, p, seed), WeightModel::Exponential(1.0), seed + 2);
        // The weight trajectory comes from the per-phase observer.
        let curve = ConvergenceCurve::new();
        let r = Session::on(&g)
            .algorithm(Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box,
            })
            .seed(seed)
            .observe(curve.clone())
            .build()
            .run_to_completion();
        assert!(r.matching.validate(&g).is_ok());
        for w in curve.points().windows(2) {
            assert!(w[1].weight >= w[0].weight - 1e-9);
        }
    }
}

/// Determinism: identical (graph, seed) inputs give identical
/// results and statistics for the randomized algorithms.
#[test]
fn runs_are_reproducible() {
    for (n, p, seed) in cases(6, 16, 4, 25) {
        let g = gnp(n, p, seed);
        let ii = |(): ()| {
            Session::on(&g)
                .algorithm(Algorithm::IsraeliItai)
                .seed(seed)
                .build()
                .run_to_completion()
        };
        let (r1, r2) = (ii(()), ii(()));
        assert_eq!(r1.matching, r2.matching);
        assert_eq!(r1.stats.rounds, r2.stats.rounds);
        assert_eq!(r1.stats.bits, r2.stats.bits);

        let gen = |(): ()| {
            Session::on(&g)
                .algorithm(Algorithm::General {
                    k: 2,
                    early_stop: None,
                })
                .sampling_iterations(6)
                .seed(seed)
                .build()
                .run_to_completion()
        };
        let (r1, r2) = (gen(()), gen(()));
        assert_eq!(r1.matching, r2.matching);
        assert_eq!(r1.stats.messages, r2.stats.messages);
    }
}

/// The derived-gain graph never contains matching edges, and
/// applying any matching of it through wraps keeps validity
/// (Lemma 4.1, randomized).
#[test]
fn derived_graph_and_wraps_sound() {
    for (n, p, seed) in cases(7, 24, 4, 16) {
        let p = p.max(0.2);
        let g = apply_weights(&gnp(n, p, seed), WeightModel::Integer(1, 12), seed + 3);
        let m = distributed_matching::dgraph::greedy::greedy_maximal(&g);
        let (gp, back) = weighted::derived_graph(&g, &m);
        for e in 0..gp.m() as u32 {
            assert!(!m.contains(&g, back[e as usize]));
            assert!(gp.weight(e) > 0.0);
        }
        let mp = distributed_matching::dgraph::greedy::greedy_by_weight(&gp);
        let mprime: Vec<u32> = mp.edge_ids(&gp).iter().map(|&e| back[e as usize]).collect();
        let wm: f64 = mprime
            .iter()
            .map(|&e| weighted::derived_weight(&g, &m, e))
            .sum();
        let (m2, realized) = weighted::apply_wraps(&g, &m, &mprime);
        assert!(m2.validate(&g).is_ok());
        assert!(realized >= wm - 1e-9);
    }
}
