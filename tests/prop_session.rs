//! The `Session` contract suite.
//!
//! The unified driver re-implements every legacy entry point's loop
//! over shared per-phase primitives; this suite pins the two surfaces
//! together: for every `Algorithm` variant, the deprecated shim and the
//! equivalent `Session` run must be **bit-identical** — the matching,
//! the label, the oracle-check count, and the *full* `NetStats`
//! (rounds, messages, bits, message sizes, plane gauges, and every
//! per-round trace row). It also covers the observer plane (mid-run
//! snapshots, convergence curves, round budgets), warm starts, rewire
//! repair, and Honest termination across all variants.

#![allow(deprecated)] // the whole point: shims vs. the session

use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{Graph, Matching};
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{
    generic, israeli_itai, runner, Algorithm, Phase, RewirePatch, Session, TerminationMode,
};
use distributed_matching::simnet::ExecCfg;

/// Every `Algorithm` variant (both termination-relevant `Weighted`
/// boxes included; `Bipartite` needs the sides of `bipartite_case`).
fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::Generic { k: 3 },
        Algorithm::Bipartite { k: 2 },
        Algorithm::General {
            k: 2,
            early_stop: Some(8),
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::SeqClass,
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::ParClass,
        },
        Algorithm::DeltaMwm {
            mwm_box: MwmBox::LocalDominant,
        },
    ]
}

fn needs_weights(alg: &Algorithm) -> bool {
    matches!(alg, Algorithm::Weighted { .. } | Algorithm::DeltaMwm { .. })
}

/// (graph, sides) for one test case; weighted algorithms get weights.
/// Graphs are *connected* (Honest mode runs a convergecast over the
/// whole topology).
fn case(alg: &Algorithm, seed: u64) -> (Graph, Option<Vec<bool>>) {
    if matches!(alg, Algorithm::Bipartite { .. }) {
        let (g, sides) = (0..)
            .map(|i| bipartite_gnp(10, 11, 0.4, seed + 1000 * i))
            .find(|(g, _)| g.components() == 1)
            .expect("a connected bipartite sample exists");
        (g, Some(sides))
    } else {
        let g = (0..)
            .map(|i| gnp(22, 0.22, seed + 1000 * i))
            .find(|g| g.components() == 1)
            .expect("a connected sample exists");
        if needs_weights(alg) {
            (
                apply_weights(&g, WeightModel::Uniform(0.5, 4.0), seed + 9),
                None,
            )
        } else {
            (g, None)
        }
    }
}

fn session_run(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    termination: TerminationMode,
    cfg: ExecCfg,
) -> distributed_matching::dmatch::RunReport {
    let mut b = Session::on(g)
        .algorithm(alg)
        .seed(seed)
        .termination(termination)
        .exec(cfg);
    if let Some(sides) = sides {
        b = b.sides(sides);
    }
    b.build().run_to_completion()
}

/// Shim vs. session: bit-identity of matching + full NetStats + name +
/// oracle checks, for every algorithm variant, in both termination
/// modes and under both executors.
#[test]
fn shim_and_session_are_bit_identical_for_every_algorithm() {
    for alg in all_algorithms() {
        for seed in [3u64, 17] {
            let (g, sides) = case(&alg, seed);
            let sides_ref = sides.as_deref();
            for termination in [TerminationMode::Oracle, TerminationMode::Honest] {
                for cfg in [ExecCfg::sequential(), ExecCfg::parallel(4)] {
                    let shim = runner::run_cfg(&g, sides_ref, alg, seed, termination, cfg);
                    let sess = session_run(&g, sides_ref, alg, seed, termination, cfg);
                    assert_eq!(shim.name, sess.name, "{alg}: label diverged");
                    assert_eq!(
                        shim.matching, sess.matching,
                        "{alg}/{termination}: matching diverged"
                    );
                    assert_eq!(
                        shim.stats, sess.stats,
                        "{alg}/{termination}: NetStats diverged (incl. per-round rows)"
                    );
                    assert_eq!(
                        shim.oracle_checks, sess.oracle_checks,
                        "{alg}/{termination}: oracle accounting diverged"
                    );
                }
            }
        }
    }
}

/// Warm starts route through the same code as the `_from` shims.
#[test]
fn warm_start_matches_from_shims() {
    let g = gnp(26, 0.15, 5);
    let init = distributed_matching::dgraph::greedy::greedy_maximal(&g);

    let shim = generic::run_from_cfg(&g, &init, 2, 7, ExecCfg::sequential());
    let sess = Session::on(&g)
        .algorithm(Algorithm::Generic { k: 2 })
        .warm_start(&init)
        .seed(7)
        .build()
        .run_to_completion();
    assert_eq!(shim.matching, sess.matching);
    assert_eq!(shim.stats, sess.stats);

    let (m_shim, s_shim) =
        israeli_itai::maximal_matching_from_cfg(&g, &init, 7, ExecCfg::default());
    let sess = Session::on(&g)
        .algorithm(Algorithm::IsraeliItai)
        .warm_start(&init)
        .seed(7)
        .build()
        .run_to_completion();
    assert_eq!(m_shim, sess.matching);
    assert_eq!(s_shim, sess.stats);
}

/// `resume_after_rewire` reproduces the legacy damage-ball repair:
/// same matching, same repair-phase statistics (the session's stats
/// delta across the rewire equals the standalone `repair_cfg` run).
#[test]
fn rewire_repair_matches_repair_shim() {
    for seed in [1u64, 8] {
        let g = gnp(36, 0.09, 60 + seed);
        let k = 2;
        let mut sess = Session::on(&g)
            .algorithm(Algorithm::Generic { k })
            .seed(seed)
            .build();
        let boot = sess.run_to_completion();
        let Some(&e) = boot.matching.edge_ids(&g).first() else {
            continue;
        };
        let (a, b) = g.endpoints(e);
        let (g2, _) = g.edge_subgraph(|x| x != e);
        // Legacy path: surviving matching re-built by hand, repair_cfg.
        let mut survived = Matching::new(g2.n());
        for &eid in &boot.matching.edge_ids(&g) {
            if eid != e {
                let (u, v) = g.endpoints(eid);
                survived.add(&g2, g2.edge_between(u, v).expect("surviving edge"));
            }
        }
        // The engine convention: epoch 1 seeds as seed + 1.
        let shim = generic::repair_cfg(&g2, &survived, &[a, b], k, seed + 1, ExecCfg::default());
        // Session path: stats delta across the resumed epoch.
        let before = sess.stats().clone();
        sess.resume_after_rewire(RewirePatch::new(g2.clone(), vec![a, b]));
        let after = sess.run_to_completion();
        assert_eq!(shim.matching, after.matching, "seed {seed}");
        assert_eq!(
            shim.stats.rounds,
            after.stats.rounds - before.rounds,
            "seed {seed}: repair rounds diverged"
        );
        assert_eq!(shim.stats.messages, after.stats.messages - before.messages);
        assert_eq!(shim.stats.bits, after.stats.bits - before.bits);
    }
}

/// Acceptance test: observer-driven mid-run snapshots show the
/// matching ratio monotonically improving for `Generic { k }` without
/// consuming the run — and the final result is unchanged by observing.
#[test]
fn midrun_snapshots_show_monotone_ratio_without_consuming() {
    let k = 4;
    let g = gnp(40, 0.12, 21);
    let opt = distributed_matching::dgraph::blossom::max_matching(&g)
        .size()
        .max(1);
    let mut sess = Session::on(&g)
        .algorithm(Algorithm::Generic { k })
        .seed(2)
        .build();
    let mut ratios = Vec::new();
    loop {
        match sess.step() {
            Phase::Ran(info) => {
                let snap = sess.snapshot();
                assert_eq!(snap.matching.size(), info.matching_size);
                assert!(snap.matching.validate(&g).is_ok());
                ratios.push(snap.matching.size() as f64 / opt as f64);
            }
            Phase::Done => break,
            Phase::Aborted => unreachable!("no aborting observer attached"),
        }
    }
    assert_eq!(ratios.len(), k, "one snapshot per phase");
    assert!(
        ratios.windows(2).all(|w| w[1] >= w[0]),
        "ratio must improve monotonically: {ratios:?}"
    );
    assert!(*ratios.last().unwrap() >= 1.0 - 1.0 / (k as f64 + 1.0) - 1e-9);
    // Snapshots consumed nothing: the run equals an unobserved one.
    let oneshot = Session::on(&g)
        .algorithm(Algorithm::Generic { k })
        .seed(2)
        .build()
        .run_to_completion();
    assert_eq!(&oneshot.matching, sess.matching());
    assert_eq!(&oneshot.stats, sess.stats());
}

/// Satellite: `TerminationMode::Honest` across *all* algorithm
/// variants — every run performs oracle checks, and honest charging
/// can only add rounds (strictly, on these connected-enough graphs).
#[test]
fn honest_mode_charges_every_algorithm() {
    for alg in all_algorithms() {
        let (g, sides) = case(&alg, 9);
        let sides_ref = sides.as_deref();
        let oracle = session_run(
            &g,
            sides_ref,
            alg,
            4,
            TerminationMode::Oracle,
            ExecCfg::default(),
        );
        let honest = session_run(
            &g,
            sides_ref,
            alg,
            4,
            TerminationMode::Honest,
            ExecCfg::default(),
        );
        assert!(honest.oracle_checks > 0, "{alg}: no oracle checks counted");
        assert_eq!(honest.oracle_checks, oracle.oracle_checks);
        assert!(
            honest.stats.rounds >= oracle.stats.rounds,
            "{alg}: honest {} < oracle {}",
            honest.stats.rounds,
            oracle.stats.rounds
        );
        assert!(
            honest.stats.rounds > oracle.stats.rounds || g.n() == 0,
            "{alg}: honest mode must charge convergecasts"
        );
        assert_eq!(
            honest.matching, oracle.matching,
            "{alg}: termination charging must not change the result"
        );
    }
}

/// Satellite: the ParClass box (ex `run_parallel{,_cfg}`) routes the
/// caller's `ExecCfg` into every per-class network — results are
/// bit-identical across worker-thread counts and scheduler modes.
#[test]
fn parclass_box_threads_exec_cfg() {
    let g = apply_weights(&gnp(24, 0.2, 13), WeightModel::Exponential(1.5), 14);
    let alg = Algorithm::DeltaMwm {
        mwm_box: MwmBox::ParClass,
    };
    let base = session_run(
        &g,
        None,
        alg,
        6,
        TerminationMode::Oracle,
        ExecCfg::sequential(),
    );
    for cfg in [ExecCfg::parallel(8), ExecCfg::sequential().dense()] {
        let other = session_run(&g, None, alg, 6, TerminationMode::Oracle, cfg);
        assert_eq!(base.matching, other.matching);
        assert_eq!(base.stats.messages, other.stats.messages);
        assert_eq!(base.stats.rounds, other.stats.rounds);
    }
    // And the deprecated free function is now a thin shim over the very
    // same path the DeltaMwm session drives (seed = session epoch seed).
    let (m, s) = distributed_matching::dmatch::weighted::classes::run_parallel_cfg(
        &g,
        6,
        ExecCfg::sequential(),
    );
    assert_eq!(m, base.matching);
    assert_eq!(s, base.stats);
}

/// The cached blossom optimum: repeated ratio queries agree, and the
/// underlying solver runs only once (observable as stable identity of
/// the result; the panic-on-different-graph guard has its own test).
#[test]
fn run_report_caches_the_optimum() {
    let g = gnp(30, 0.15, 44);
    let r = session_run(
        &g,
        None,
        Algorithm::IsraeliItai,
        1,
        TerminationMode::Oracle,
        ExecCfg::default(),
    );
    let first = r.mcm_ratio(&g);
    for _ in 0..100 {
        assert_eq!(r.mcm_ratio(&g), first);
    }
    assert_eq!(
        r.mcm_opt(&g),
        distributed_matching::dgraph::blossom::max_matching(&g).size()
    );
}

#[test]
#[should_panic(expected = "different graph")]
fn run_report_cache_rejects_equal_sized_rewired_graph() {
    // Degree-preserving rewiring keeps (n, m); the cache tag must
    // still notice the edge list changed.
    let g = Graph::new(4, vec![(0, 1), (2, 3)]);
    let r = session_run(
        &g,
        None,
        Algorithm::IsraeliItai,
        1,
        TerminationMode::Oracle,
        ExecCfg::default(),
    );
    let _ = r.mcm_opt(&g);
    let rewired = Graph::new(4, vec![(0, 2), (1, 3)]);
    let _ = r.mcm_opt(&rewired);
}

#[test]
#[should_panic(expected = "different graph")]
fn run_report_cache_rejects_a_different_graph() {
    let g = gnp(30, 0.15, 44);
    let r = session_run(
        &g,
        None,
        Algorithm::IsraeliItai,
        1,
        TerminationMode::Oracle,
        ExecCfg::default(),
    );
    let _ = r.mcm_ratio(&g);
    let other = gnp(31, 0.15, 45);
    let _ = r.mcm_ratio(&other);
}
