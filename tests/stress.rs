//! Large-scale stress tests — run explicitly with
//! `cargo test --release --test stress -- --ignored`.
//!
//! These verify the guarantees at sizes beyond the default CI budget
//! and exercise the parallel stepping path under load.

use distributed_matching::dgraph::generators::random::{bipartite_regular, gnp};
use distributed_matching::dmatch;
use distributed_matching::dmatch::{Algorithm, Session};

#[test]
#[ignore = "large: ~seconds in release, minutes in debug"]
fn israeli_itai_at_sixty_five_thousand_nodes() {
    let n = 1 << 16;
    let g = gnp(n, 8.0 / n as f64, 1);
    let r = Session::on(&g)
        .algorithm(Algorithm::IsraeliItai)
        .seed(2)
        .build()
        .run_to_completion();
    assert!(r.matching.is_maximal(&g));
    // O(log n) iterations: 16·3·constant rounds is plenty.
    assert!(r.stats.rounds <= 3 * 250, "{} rounds", r.stats.rounds);
}

#[test]
#[ignore = "large"]
fn bipartite_theorem_38_at_scale() {
    let (g, sides) = bipartite_regular(1 << 13, 3, 3);
    let out = Session::on(&g)
        .algorithm(Algorithm::Bipartite { k: 4 })
        .sides(&sides)
        .seed(5)
        .build()
        .run_to_completion();
    assert!(out.matching.validate(&g).is_ok());
    let opt = distributed_matching::dgraph::hopcroft_karp::max_matching(&g, &sides).size();
    assert!(out.matching.size() as f64 >= 0.75 * opt as f64);
    assert!(out.stats.max_msg_bits <= 128);
}

#[test]
#[ignore = "large"]
fn parallel_stepping_agrees_at_scale() {
    use simnet::{Ctx, Inbox, Network, Protocol};
    struct Gossip(u64);
    impl Protocol for Gossip {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.0 = self.0.rotate_left(13) ^ *e.msg;
            }
            if ctx.round() < 16 {
                let r = ctx.rng().next();
                ctx.send_all(self.0 ^ r);
            } else {
                ctx.halt();
            }
        }
    }
    let n = 1 << 14;
    let g = gnp(n, 10.0 / n as f64, 7);
    let topo = dmatch::topology_of(&g);
    let mk = || (0..n as u64).map(Gossip).collect::<Vec<_>>();
    let mut seq = Network::new(topo.clone(), mk(), 9);
    seq.run_until_halt(64);
    let mut par = Network::new(topo, mk(), 9).with_threads(8);
    par.run_until_halt(64);
    for (a, b) in seq.nodes().iter().zip(par.nodes()) {
        assert_eq!(a.0, b.0);
    }
}

#[test]
#[ignore = "large"]
fn churn_engine_at_scale() {
    use distributed_matching::dchurn::{ChurnModel, DynEngine, RepairAlgo};
    let n = 1 << 15;
    let g = gnp(n, 8.0 / n as f64, 3);
    let mut eng = DynEngine::with_cfg(
        g,
        ChurnModel::EdgeChurn { rate: 0.02 },
        RepairAlgo::IncrementalMaximal,
        6,
        simnet::ExecCfg::parallel(8),
    );
    eng.bootstrap();
    for _ in 0..20 {
        let rep = eng.step_epoch().clone();
        assert!(rep.maximal);
        assert!(eng.matching().validate(eng.graph()).is_ok());
        // Repair stays local even at 32k nodes: the woken set tracks
        // the damage, not the graph.
        assert!(
            rep.woken < n / 4,
            "{} of {n} nodes woke for {} damaged nodes",
            rep.woken,
            rep.damage
        );
    }
}

#[test]
#[ignore = "large"]
fn weighted_reduction_at_four_thousand_nodes() {
    use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
    let n = 4096;
    let g = apply_weights(
        &gnp(n, 6.0 / n as f64, 11),
        WeightModel::Exponential(1.0),
        12,
    );
    let r = Session::on(&g)
        .algorithm(Algorithm::Weighted {
            epsilon: 0.2,
            mwm_box: dmatch::weighted::MwmBox::SeqClass,
        })
        .seed(13)
        .build()
        .run_to_completion();
    assert!(r.matching.validate(&g).is_ok());
    // Certified bound: the result must clear (½-ε) of ½·Σ max-incident.
    let ub = dmatch::runner::mwm_upper_bound(&g);
    assert!(
        r.matching.weight(&g) >= 0.3 * 0.5 * ub,
        "too far below the certified bound"
    );
}

#[test]
#[ignore = "large"]
fn topology_zoo_generates_and_matches_at_scale() {
    use bench_harness::workloads::Family;
    use std::time::Instant;
    // Every zoo family at 2^14 and 2^15 nodes: generation must behave
    // like O(n+m) (the 2x-nodes run may not blow past ~4x the time of
    // the half-size run — a generous envelope that still catches a
    // quadratic pair scan), and a full Israeli–Itai run over the
    // sparse scheduler must stay within its O(log n) round budget.
    let n = 1 << 15;
    for family in Family::ZOO {
        let t0 = Instant::now();
        let half = family.instantiate(n / 2, 3);
        let t_half = t0.elapsed();
        let t0 = Instant::now();
        let w = family.instantiate(n, 3);
        let t_full = t0.elapsed();
        assert_eq!(w.graph.n(), n, "{family}");
        assert!(
            w.graph.m() >= w.graph.n(),
            "{family}: too sparse to be interesting at scale"
        );
        // Generous constant: wall-clock is noisy in CI, but a
        // quadratic generator is ~4x over this envelope already.
        assert!(
            t_full.as_secs_f64() <= 4.0 * t_half.as_secs_f64().max(0.05),
            "{family}: {t_half:?} -> {t_full:?} for 2x nodes is super-linear"
        );
        assert!(half.graph.m() > 0);
        let r = w
            .session(Algorithm::IsraeliItai, 5)
            .build()
            .run_to_completion();
        assert!(r.matching.is_maximal(&w.graph), "{family}");
        assert!(
            r.stats.rounds <= 3 * 250,
            "{family}: {} rounds breaks the O(log n) budget",
            r.stats.rounds
        );
    }
}
