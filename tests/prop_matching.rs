//! Property-based tests (proptest) for the matching substrate: the
//! Hopcroft–Karp lemmas the paper builds on, solver cross-checks, and
//! structural invariants of `Matching` operations.

use distributed_matching::dgraph::augmenting::{
    apply_paths, enumerate_augmenting_paths, greedy_disjoint_paths, is_maximal_disjoint,
    shortest_augmenting_path_len_bipartite,
};
use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{
    bipartite, blossom, greedy, hopcroft_karp, hungarian, mwm_exact, Matching,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Berge's theorem, constructively: blossom's result admits no
    /// augmenting path of any length.
    #[test]
    fn blossom_is_maximum_by_berge(n in 4usize..14, pm in 5u32..40, seed in 0u64..5000) {
        let g = gnp(n, pm as f64 / 100.0, seed);
        let m = blossom::max_matching(&g);
        prop_assert!(m.validate(&g).is_ok());
        prop_assert!(enumerate_augmenting_paths(&g, &m, n).is_empty());
    }

    /// Hopcroft–Karp agrees with blossom on bipartite graphs.
    #[test]
    fn hk_equals_blossom_on_bipartite(a in 2usize..9, b in 2usize..9, pm in 10u32..60, seed in 0u64..5000) {
        let (g, sides) = bipartite_gnp(a, b, pm as f64 / 100.0, seed);
        prop_assert_eq!(
            hopcroft_karp::max_matching(&g, &sides).size(),
            blossom::max_matching(&g).size()
        );
    }

    /// Hungarian equals the bitmask DP on small weighted bipartite graphs.
    #[test]
    fn hungarian_equals_dp(a in 2usize..7, b in 2usize..7, seed in 0u64..5000) {
        let (g0, sides) = bipartite_gnp(a, b, 0.5, seed);
        let g = apply_weights(&g0, WeightModel::Integer(1, 30), seed + 1);
        let h = hungarian::max_weight_matching(&g, &sides).weight(&g);
        let dp = mwm_exact::max_weight_exact(&g);
        prop_assert!((h - dp).abs() < 1e-9, "hungarian {} vs dp {}", h, dp);
    }

    /// Lemma 3.4: augmenting along a maximal set of shortest paths
    /// strictly increases the shortest augmenting-path length.
    #[test]
    fn lemma_3_4_shortest_length_grows(a in 3usize..8, b in 3usize..8, pm in 15u32..55, seed in 0u64..5000) {
        let (g, sides) = bipartite_gnp(a, b, pm as f64 / 100.0, seed);
        let mut m = Matching::new(g.n());
        // Drive a few phases and check monotonicity at each.
        for _ in 0..4 {
            let Some(l) = shortest_augmenting_path_len_bipartite(&g, &sides, &m) else { break };
            let all = enumerate_augmenting_paths(&g, &m, l);
            let shortest: Vec<_> = all.into_iter().filter(|p| p.len() == l + 1).collect();
            prop_assert!(!shortest.is_empty(), "BFS found length {} but enumeration did not", l);
            let chosen = greedy_disjoint_paths(&g, &shortest);
            prop_assert!(is_maximal_disjoint(&g, &shortest, &chosen));
            let sel: Vec<_> = chosen.iter().map(|&i| shortest[i].clone()).collect();
            apply_paths(&g, &mut m, &sel);
            let l2 = shortest_augmenting_path_len_bipartite(&g, &sides, &m);
            prop_assert!(l2.is_none_or(|x| x > l), "Lemma 3.4: {:?} ≤ {}", l2, l);
        }
    }

    /// Lemma 3.5: if the shortest augmenting path has length 2k-1,
    /// then |M| ≥ (1 - 1/k)|M*|.
    #[test]
    fn lemma_3_5_quality_from_path_length(a in 3usize..8, b in 3usize..8, pm in 15u32..55, seed in 0u64..5000) {
        let (g, sides) = bipartite_gnp(a, b, pm as f64 / 100.0, seed);
        // Any maximal matching serves as M.
        let m = greedy::greedy_maximal(&g);
        let opt = hopcroft_karp::max_matching(&g, &sides).size();
        if let Some(l) = shortest_augmenting_path_len_bipartite(&g, &sides, &m) {
            prop_assert!(l % 2 == 1);
            let k = l.div_ceil(2); // l = 2k-1
            prop_assert!(
                m.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
                "|M|={} opt={} l={}", m.size(), opt, l
            );
        } else {
            prop_assert_eq!(m.size(), opt);
        }
    }

    /// The counting BFS distance equals the true shortest augmenting
    /// path length at every reached free Y node.
    #[test]
    fn counting_distance_is_exact(a in 3usize..8, b in 3usize..8, pm in 20u32..60, seed in 0u64..5000) {
        let (g, sides) = bipartite_gnp(a, b, pm as f64 / 100.0, seed);
        let m = greedy::greedy_maximal(&g);
        let ell = 7;
        let spec = distributed_matching::dmatch::bipartite::SubgraphSpec::full_bipartite(&g, &sides);
        let pass = distributed_matching::dmatch::bipartite::count::run(&g, &m, &spec, ell, seed);
        let paths = enumerate_augmenting_paths(&g, &m, ell);
        for y in 0..g.n() as u32 {
            if !sides[y as usize] || !m.is_free(y) { continue; }
            let best = paths.iter()
                .filter(|p| p[0] == y || *p.last().unwrap() == y)
                .map(|p| p.len() - 1)
                .min();
            match (pass.dist[y as usize], best) {
                (Some(d), Some(b)) => prop_assert_eq!(d as usize, b, "node {}", y),
                (None, None) => {}
                (d, b) => prop_assert!(false, "node {}: counted {:?} enumerated {:?}", y, d, b),
            }
        }
    }

    /// Matching symmetric difference with a set of disjoint augmenting
    /// paths grows the matching by exactly the number of paths.
    #[test]
    fn symmetric_difference_grows_by_path_count(n in 4usize..14, pm in 10u32..50, seed in 0u64..5000) {
        let g = gnp(n, pm as f64 / 100.0, seed);
        let mut m = greedy::greedy_maximal(&g);
        let before = m.size();
        let paths = enumerate_augmenting_paths(&g, &m, 3);
        let chosen = greedy_disjoint_paths(&g, &paths);
        let sel: Vec<_> = chosen.iter().map(|&i| paths[i].clone()).collect();
        apply_paths(&g, &mut m, &sel);
        prop_assert!(m.validate(&g).is_ok());
        prop_assert_eq!(m.size(), before + sel.len());
    }

    /// Greedy-by-weight is a ½-MWM (the paper's opening observation).
    #[test]
    fn greedy_half_mwm(n in 4usize..13, pm in 15u32..55, seed in 0u64..5000) {
        let g = apply_weights(&gnp(n, pm as f64 / 100.0, seed), WeightModel::Uniform(0.1, 4.0), seed + 9);
        let gw = greedy::greedy_by_weight(&g).weight(&g);
        let opt = mwm_exact::max_weight_exact(&g);
        prop_assert!(gw >= 0.5 * opt - 1e-9, "{} < half of {}", gw, opt);
    }

    /// Two-coloring is correct whenever it exists, and bipartite
    /// generators always admit one.
    #[test]
    fn two_coloring_correctness(a in 2usize..10, b in 2usize..10, pm in 10u32..80, seed in 0u64..5000) {
        let (g, sides) = bipartite_gnp(a, b, pm as f64 / 100.0, seed);
        prop_assert!(bipartite::is_valid_bipartition(&g, &sides));
        let computed = bipartite::two_color(&g).expect("generated graph is bipartite");
        prop_assert!(bipartite::is_valid_bipartition(&g, &computed));
    }

    /// An odd cycle plus anything is never 2-colorable.
    #[test]
    fn odd_cycles_rejected(extra in 0usize..8, seed in 0u64..1000) {
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let n = 3 + extra;
        // Attach a random path of `extra` nodes.
        for i in 0..extra {
            edges.push((2 + i as u32, 3 + i as u32));
        }
        let _ = seed;
        let g = distributed_matching::dgraph::Graph::new(n, edges);
        prop_assert!(bipartite::two_color(&g).is_none());
    }
}
