//! Randomized property tests for the matching substrate: the
//! Hopcroft–Karp lemmas the paper builds on, solver cross-checks, and
//! structural invariants of `Matching` operations.
//!
//! Dependency-free: cases are enumerated from seeded `SplitMix64`
//! streams, so every run explores the same (deterministic) case set.

use distributed_matching::dgraph::augmenting::{
    apply_paths, enumerate_augmenting_paths, greedy_disjoint_paths, is_maximal_disjoint,
    shortest_augmenting_path_len_bipartite,
};
use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::{
    bipartite, blossom, greedy, hopcroft_karp, hungarian, mwm_exact, Matching,
};
use distributed_matching::simnet::SplitMix64;

/// Deterministic bipartite case stream: (a, b, p, seed).
fn bip_cases(tag: u64, count: usize, lo: usize, hi: usize) -> Vec<(usize, usize, f64, u64)> {
    let mut rng = SplitMix64::new(0x3A7C ^ tag);
    (0..count)
        .map(|_| {
            let a = lo + rng.below((hi - lo) as u64) as usize;
            let b = lo + rng.below((hi - lo) as u64) as usize;
            let p = (10 + rng.below(50)) as f64 / 100.0;
            (a, b, p, rng.next())
        })
        .collect()
}

/// Deterministic general case stream: (n, p, seed).
fn gen_cases(tag: u64, count: usize, lo: usize, hi: usize) -> Vec<(usize, f64, u64)> {
    let mut rng = SplitMix64::new(0x3A7C ^ tag);
    (0..count)
        .map(|_| {
            let n = lo + rng.below((hi - lo) as u64) as usize;
            let p = (5 + rng.below(45)) as f64 / 100.0;
            (n, p, rng.next())
        })
        .collect()
}

/// Berge's theorem, constructively: blossom's result admits no
/// augmenting path of any length.
#[test]
fn blossom_is_maximum_by_berge() {
    for (n, p, seed) in gen_cases(1, 48, 4, 14) {
        let g = gnp(n, p, seed);
        let m = blossom::max_matching(&g);
        assert!(m.validate(&g).is_ok());
        assert!(enumerate_augmenting_paths(&g, &m, n).is_empty());
    }
}

/// Hopcroft–Karp agrees with blossom on bipartite graphs.
#[test]
fn hk_equals_blossom_on_bipartite() {
    for (a, b, p, seed) in bip_cases(2, 48, 2, 9) {
        let (g, sides) = bipartite_gnp(a, b, p, seed);
        assert_eq!(
            hopcroft_karp::max_matching(&g, &sides).size(),
            blossom::max_matching(&g).size()
        );
    }
}

/// Hungarian equals the bitmask DP on small weighted bipartite graphs.
#[test]
fn hungarian_equals_dp() {
    for (a, b, _p, seed) in bip_cases(3, 48, 2, 7) {
        let (g0, sides) = bipartite_gnp(a, b, 0.5, seed);
        let g = apply_weights(&g0, WeightModel::Integer(1, 30), seed + 1);
        let h = hungarian::max_weight_matching(&g, &sides).weight(&g);
        let dp = mwm_exact::max_weight_exact(&g);
        assert!((h - dp).abs() < 1e-9, "hungarian {} vs dp {}", h, dp);
    }
}

/// Lemma 3.4: augmenting along a maximal set of shortest paths
/// strictly increases the shortest augmenting-path length.
#[test]
fn lemma_3_4_shortest_length_grows() {
    for (a, b, p, seed) in bip_cases(4, 48, 3, 8) {
        let p = p.max(0.15);
        let (g, sides) = bipartite_gnp(a, b, p, seed);
        let mut m = Matching::new(g.n());
        // Drive a few phases and check monotonicity at each.
        for _ in 0..4 {
            let Some(l) = shortest_augmenting_path_len_bipartite(&g, &sides, &m) else {
                break;
            };
            let all = enumerate_augmenting_paths(&g, &m, l);
            let shortest: Vec<_> = all.into_iter().filter(|q| q.len() == l + 1).collect();
            assert!(
                !shortest.is_empty(),
                "BFS found length {} but enumeration did not",
                l
            );
            let chosen = greedy_disjoint_paths(&g, &shortest);
            assert!(is_maximal_disjoint(&g, &shortest, &chosen));
            let sel: Vec<_> = chosen.iter().map(|&i| shortest[i].clone()).collect();
            apply_paths(&g, &mut m, &sel);
            let l2 = shortest_augmenting_path_len_bipartite(&g, &sides, &m);
            assert!(l2.is_none_or(|x| x > l), "Lemma 3.4: {:?} ≤ {}", l2, l);
        }
    }
}

/// Lemma 3.5: if the shortest augmenting path has length 2k-1,
/// then |M| ≥ (1 - 1/k)|M*|.
#[test]
fn lemma_3_5_quality_from_path_length() {
    for (a, b, p, seed) in bip_cases(5, 48, 3, 8) {
        let p = p.max(0.15);
        let (g, sides) = bipartite_gnp(a, b, p, seed);
        // Any maximal matching serves as M.
        let m = greedy::greedy_maximal(&g);
        let opt = hopcroft_karp::max_matching(&g, &sides).size();
        if let Some(l) = shortest_augmenting_path_len_bipartite(&g, &sides, &m) {
            assert!(l % 2 == 1);
            let k = l.div_ceil(2); // l = 2k-1
            assert!(
                m.size() as f64 >= (1.0 - 1.0 / k as f64) * opt as f64 - 1e-9,
                "|M|={} opt={} l={}",
                m.size(),
                opt,
                l
            );
        } else {
            assert_eq!(m.size(), opt);
        }
    }
}

/// The counting BFS distance equals the true shortest augmenting
/// path length at every reached free Y node.
#[test]
fn counting_distance_is_exact() {
    for (a, b, p, seed) in bip_cases(6, 48, 3, 8) {
        let p = p.max(0.2);
        let (g, sides) = bipartite_gnp(a, b, p, seed);
        let m = greedy::greedy_maximal(&g);
        let ell = 7;
        let spec =
            distributed_matching::dmatch::bipartite::SubgraphSpec::full_bipartite(&g, &sides);
        let pass = distributed_matching::dmatch::bipartite::count::run(&g, &m, &spec, ell, seed);
        let paths = enumerate_augmenting_paths(&g, &m, ell);
        for y in 0..g.n() as u32 {
            if !sides[y as usize] || !m.is_free(y) {
                continue;
            }
            let best = paths
                .iter()
                .filter(|q| q[0] == y || *q.last().unwrap() == y)
                .map(|q| q.len() - 1)
                .min();
            match (pass.dist[y as usize], best) {
                (Some(d), Some(b)) => assert_eq!(d as usize, b, "node {}", y),
                (None, None) => {}
                (d, b) => panic!("node {}: counted {:?} enumerated {:?}", y, d, b),
            }
        }
    }
}

/// Matching symmetric difference with a set of disjoint augmenting
/// paths grows the matching by exactly the number of paths.
#[test]
fn symmetric_difference_grows_by_path_count() {
    for (n, p, seed) in gen_cases(7, 48, 4, 14) {
        let g = gnp(n, p, seed);
        let mut m = greedy::greedy_maximal(&g);
        let before = m.size();
        let paths = enumerate_augmenting_paths(&g, &m, 3);
        let chosen = greedy_disjoint_paths(&g, &paths);
        let sel: Vec<_> = chosen.iter().map(|&i| paths[i].clone()).collect();
        apply_paths(&g, &mut m, &sel);
        assert!(m.validate(&g).is_ok());
        assert_eq!(m.size(), before + sel.len());
    }
}

/// Greedy-by-weight is a ½-MWM (the paper's opening observation).
#[test]
fn greedy_half_mwm() {
    for (n, p, seed) in gen_cases(8, 48, 4, 13) {
        let p = p.max(0.15);
        let g = apply_weights(&gnp(n, p, seed), WeightModel::Uniform(0.1, 4.0), seed + 9);
        let gw = greedy::greedy_by_weight(&g).weight(&g);
        let opt = mwm_exact::max_weight_exact(&g);
        assert!(gw >= 0.5 * opt - 1e-9, "{} < half of {}", gw, opt);
    }
}

/// Two-coloring is correct whenever it exists, and bipartite
/// generators always admit one.
#[test]
fn two_coloring_correctness() {
    for (a, b, p, seed) in bip_cases(9, 48, 2, 10) {
        let (g, sides) = bipartite_gnp(a, b, p, seed);
        assert!(bipartite::is_valid_bipartition(&g, &sides));
        let computed = bipartite::two_color(&g).expect("generated graph is bipartite");
        assert!(bipartite::is_valid_bipartition(&g, &computed));
    }
}

/// An odd cycle plus anything is never 2-colorable.
#[test]
fn odd_cycles_rejected() {
    for extra in 0..8usize {
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let n = 3 + extra;
        // Attach a path of `extra` nodes.
        for i in 0..extra {
            edges.push((2 + i as u32, 3 + i as u32));
        }
        let g = distributed_matching::dgraph::Graph::new(n, edges);
        assert!(bipartite::two_color(&g).is_none());
    }
}
