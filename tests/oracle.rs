//! The `MatchingOracle` consistency gate.
//!
//! The headline LCA contract, gated for both supported algorithms: the
//! union of per-edge point-query answers equals one global `Session`
//! run **bit-for-bit**, no matter in which order the queries arrive,
//! how they interleave with node queries, or which probe radius the
//! oracle starts from. Plus the memo contract: re-queries return
//! identical answers with zero additional probed nodes.

use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dgraph::{EdgeId, Graph, NodeId};
use distributed_matching::dmatch::{Algorithm, MatchingOracle, Session};
use distributed_matching::simnet::SplitMix64;

fn global_mates(g: &Graph, alg: Algorithm, seed: u64) -> Vec<Option<NodeId>> {
    let mut s = Session::on(g).algorithm(alg).seed(seed).build();
    s.run_to_completion();
    let m = s.matching().clone();
    (0..g.n() as NodeId).map(|v| m.mate(v)).collect()
}

fn shuffled(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    order
}

/// Query every edge in the given order; return `matched[e]`.
fn edge_answers(o: &mut MatchingOracle<'_>, m: usize, order: &[usize]) -> Vec<bool> {
    let mut ans = vec![false; m];
    for &e in order {
        ans[e] = o.query(e as EdgeId);
    }
    ans
}

fn consistency_gate(alg: Algorithm, tag: u64) {
    for seed in 0..3u64 {
        let g = gnp(64, 0.06, 500 + tag * 10 + seed);
        let want_mates = global_mates(&g, alg, seed);
        let want_edges: Vec<bool> = (0..g.m() as EdgeId)
            .map(|e| {
                let (u, v) = g.endpoints(e);
                want_mates[u as usize] == Some(v)
            })
            .collect();

        // Order 1: ascending edge ids.
        let mut o1 = MatchingOracle::on(&g).seed(seed).algorithm(alg).build();
        let asc: Vec<usize> = (0..g.m()).collect();
        assert_eq!(edge_answers(&mut o1, g.m(), &asc), want_edges);

        // Order 2: descending.
        let mut o2 = MatchingOracle::on(&g).seed(seed).algorithm(alg).build();
        let desc: Vec<usize> = (0..g.m()).rev().collect();
        assert_eq!(edge_answers(&mut o2, g.m(), &desc), want_edges);

        // Order 3: seeded shuffle, interleaved with node queries.
        let mut rng = SplitMix64::for_node(0xE22, tag * 100 + seed);
        let order = shuffled(g.m(), &mut rng);
        let mut o3 = MatchingOracle::on(&g).seed(seed).algorithm(alg).build();
        for &e in &order {
            let (u, v) = g.endpoints(e as EdgeId);
            let matched = o3.query(e as EdgeId);
            assert_eq!(matched, want_edges[e], "{alg} seed {seed} edge {e}");
            // Interleave node queries; they must agree with the run.
            assert_eq!(o3.query_node(u), want_mates[u as usize]);
            assert_eq!(o3.query_node(v), want_mates[v as usize]);
        }

        // Node queries across the whole vertex set.
        for v in 0..g.n() as NodeId {
            assert_eq!(o1.query_node(v), want_mates[v as usize]);
        }
    }
}

#[test]
fn ii_query_union_equals_global_session() {
    consistency_gate(Algorithm::IsraeliItai, 1);
}

#[test]
fn generic_query_union_equals_global_session() {
    consistency_gate(Algorithm::Generic { k: 2 }, 2);
}

#[test]
fn generic_k3_query_union_equals_global_session() {
    let g = gnp(48, 0.07, 903);
    let alg = Algorithm::Generic { k: 3 };
    let want = global_mates(&g, alg, 4);
    let mut o = MatchingOracle::on(&g).seed(4).algorithm(alg).build();
    for v in 0..g.n() as NodeId {
        assert_eq!(o.query_node(v), want[v as usize], "vertex {v}");
    }
}

#[test]
fn answers_invariant_under_query_order_and_radius() {
    // Property: for shuffled permutations and different starting radii,
    // every oracle instance produces identical answers.
    let g = gnp(72, 0.05, 777);
    let seed = 9;
    let reference: Vec<Option<NodeId>> = {
        let mut o = MatchingOracle::on(&g).seed(seed).build();
        (0..g.n() as NodeId).map(|v| o.query_node(v)).collect()
    };
    for perm in 0..4u64 {
        let mut rng = SplitMix64::for_node(0x08DE8, perm);
        let order = shuffled(g.n(), &mut rng);
        let radius = 1 + (perm as usize % 3) * 2; // 1, 3, 5, 1
        let mut o = MatchingOracle::on(&g)
            .seed(seed)
            .initial_radius(radius)
            .build();
        for &v in &order {
            assert_eq!(
                o.query_node(v as NodeId),
                reference[v],
                "perm {perm} radius {radius} vertex {v}"
            );
        }
    }
}

#[test]
fn radius_budget_jump_stays_consistent() {
    // A tiny radius budget forces the full-component fallback early;
    // answers must not change.
    let g = gnp(60, 0.06, 31);
    let seed = 2;
    let mut capped = MatchingOracle::on(&g)
        .seed(seed)
        .initial_radius(1)
        .radius_budget(1)
        .build();
    let mut free = MatchingOracle::on(&g).seed(seed).build();
    for v in 0..g.n() as NodeId {
        assert_eq!(capped.query_node(v), free.query_node(v), "vertex {v}");
    }
}

#[test]
fn memoized_requeries_probe_nothing() {
    for (alg, tag) in [
        (Algorithm::IsraeliItai, 0u64),
        (Algorithm::Generic { k: 2 }, 1),
    ] {
        let g = gnp(56, 0.06, 40 + tag);
        let mut o = MatchingOracle::on(&g).seed(tag).algorithm(alg).build();
        let first: Vec<_> = (0..g.n() as NodeId).map(|v| o.query_node(v)).collect();
        let probed = o.metrics().counter("oracle_probed_nodes");
        let balls = o.metrics().counter("oracle_balls");
        assert!(probed > 0 && balls > 0);
        // Re-query in reverse: all memo hits, zero new probes.
        let second: Vec<_> = (0..g.n() as NodeId)
            .rev()
            .map(|v| o.query_node(v))
            .collect();
        let mut second_fwd = second.clone();
        second_fwd.reverse();
        assert_eq!(first, second_fwd, "{alg}");
        assert_eq!(
            o.metrics().counter("oracle_probed_nodes"),
            probed,
            "{alg}: memoized re-queries must not probe"
        );
        assert_eq!(o.metrics().counter("oracle_balls"), balls);
    }
}

#[test]
fn oracle_metrics_are_populated() {
    let g = gnp(40, 0.08, 5);
    let mut o = MatchingOracle::on(&g).seed(3).build();
    for v in 0..g.n() as NodeId {
        o.query_node(v);
    }
    let m = o.metrics();
    assert_eq!(m.counter("oracle_queries"), g.n() as u64);
    assert!(m.counter("oracle_misses") >= 1);
    assert!(m.counter("oracle_probed_nodes") >= m.counter("oracle_misses"));
    assert!(m.hist("oracle_ball_radius").is_some());
    assert!(m.hist("oracle_probed_per_query").is_some());
    assert!(m.gauge("oracle_memo_size") >= 1);
    assert_eq!(
        m.counter("oracle_memo_hits") + m.counter("oracle_misses"),
        m.counter("oracle_queries")
    );
}
