//! Message-plane equivalence suite: sequential and 8-thread execution,
//! and the dense and sparse round schedulers, must produce
//! **bit-identical** matchings and `NetStats` (including the per-round
//! traces and plane gauges) for every algorithm of the paper, across
//! random topology families, with and without fault injection.
//!
//! This is the contract the double-buffered plane was built around:
//! the executor (thread count) and the scheduler (wake list vs. dense
//! sweep) are unobservable, and the fault-injection RNG stream is
//! consumed in a fixed delivery order. The sole sanctioned difference
//! between scheduling modes is the `sched_overhead` gauge (the dense
//! sweep charges its skipped-node scan there), which the comparisons
//! below mask out.

use distributed_matching::dgraph::generators::random::{bipartite_gnp, gnp, random_tree};
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::Graph;
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{Algorithm, RunReport, Session};
use distributed_matching::simnet::{Budget, ExecCfg, FaultPlan, NetStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A `NetStats` with the scheduler-overhead gauge masked out — every
/// other field (rounds, messages, bits, message sizes, inbox peaks,
/// plane allocations, node steps, full per-round traces) must agree
/// bit-for-bit between the dense and sparse schedulers.
fn masked(stats: &NetStats) -> NetStats {
    let mut s = stats.clone();
    s.sched_overhead = 0;
    // Wall-clock phase gauges are likewise exempt (all-zero here unless
    // a run enables `ExecCfg::timing`, but the mask keeps the suite
    // honest about what the contract covers).
    s.timings = Default::default();
    for r in &mut s.per_round {
        r.sched_overhead = 0;
    }
    s
}

/// Serializes the two tests below: the lossy test swaps the *global*
/// panic hook, which would otherwise silence diagnostics of the sibling
/// test running on another thread.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Restores the previous panic hook on drop, so a panic inside the
/// lossy test cannot leak the silent hook into the rest of the process.
struct HookGuard(Option<PanicHook>);

impl HookGuard {
    fn silence() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        HookGuard(Some(prev))
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// All `runner::Algorithm` variants exercised by this suite.
/// `Bipartite` is included only when `sides` exist.
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::Bipartite { k: 2 },
        Algorithm::General {
            k: 2,
            early_stop: Some(6),
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::SeqClass,
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::ParClass,
        },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::LocalDominant,
        },
        Algorithm::DeltaMwm {
            mwm_box: MwmBox::LocalDominant,
        },
    ]
}

/// Topology zoo: (label, graph, sides if bipartite).
fn topologies() -> Vec<(String, Graph, Option<Vec<bool>>)> {
    let mut out = Vec::new();
    for seed in [1u64, 2, 3] {
        let g = gnp(18 + 2 * seed as usize, 0.18, seed);
        out.push((format!("gnp/{seed}"), g, None));
    }
    for seed in [4u64, 5] {
        let (g, sides) = bipartite_gnp(9, 10, 0.25, seed);
        out.push((format!("bipartite_gnp/{seed}"), g, Some(sides)));
    }
    for seed in [6u64, 7] {
        let g = random_tree(20, seed);
        out.push((format!("tree/{seed}"), g, None));
    }
    out
}

fn applicable(alg: &Algorithm, sides: &Option<Vec<bool>>) -> bool {
    !matches!(alg, Algorithm::Bipartite { .. }) || sides.is_some()
}

fn weighted_input(alg: &Algorithm) -> bool {
    matches!(alg, Algorithm::Weighted { .. } | Algorithm::DeltaMwm { .. })
}

/// Execute one (graph, algorithm, cfg) run, capturing panics so lossy
/// runs that trip an algorithm invariant still compare deterministically
/// between executors. Returns `Ok((matching edges, stats))` or `Err(())`.
#[allow(clippy::type_complexity)]
fn run_caught(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    cfg: ExecCfg,
) -> Result<(Vec<u32>, distributed_matching::simnet::NetStats), ()> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let r = session_run(g, sides, alg, seed, cfg);
        (r.matching.edge_ids(g), r.stats)
    }));
    result.map_err(|_| ())
}

/// One unified-driver run (oracle termination, explicit exec knobs).
fn session_run(
    g: &Graph,
    sides: Option<&[bool]>,
    alg: Algorithm,
    seed: u64,
    cfg: ExecCfg,
) -> RunReport {
    let mut b = Session::on(g).algorithm(alg).seed(seed).exec(cfg);
    if let Some(sides) = sides {
        b = b.sides(sides);
    }
    b.build().run_to_completion()
}

#[test]
fn sequential_vs_parallel_bit_identical_all_algorithms() {
    let _serial = HOOK_LOCK.lock().unwrap();
    for (label, g0, sides) in topologies() {
        for alg in algorithms() {
            if !applicable(&alg, &sides) {
                continue;
            }
            let g = if weighted_input(&alg) {
                apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
            } else {
                g0.clone()
            };
            let sides_ref = sides.as_deref();
            let seq = session_run(&g, sides_ref, alg, 99, ExecCfg::sequential());
            let par = session_run(&g, sides_ref, alg, 99, ExecCfg::parallel(8));
            assert_eq!(
                seq.matching, par.matching,
                "{label} / {}: matchings diverged between executors",
                seq.name
            );
            assert_eq!(
                seq.stats, par.stats,
                "{label} / {}: NetStats diverged between executors",
                seq.name
            );
            assert!(seq.matching.validate(&g).is_ok(), "{label} / {}", seq.name);
        }
    }
}

#[test]
fn dense_vs_sparse_bit_identical_all_algorithms() {
    let _serial = HOOK_LOCK.lock().unwrap();
    for (label, g0, sides) in topologies() {
        for alg in algorithms() {
            if !applicable(&alg, &sides) {
                continue;
            }
            let g = if weighted_input(&alg) {
                apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
            } else {
                g0.clone()
            };
            let sides_ref = sides.as_deref();
            let sparse = session_run(&g, sides_ref, alg, 31, ExecCfg::sequential());
            let dense = session_run(&g, sides_ref, alg, 31, ExecCfg::sequential().dense());
            // 8-thread sparse against 8-thread dense as well: the
            // active-list partitioner must agree with the dense chunks.
            let dense_par = session_run(&g, sides_ref, alg, 31, ExecCfg::parallel(8).dense());
            assert_eq!(
                sparse.matching, dense.matching,
                "{label} / {}: matchings diverged between schedulers",
                sparse.name
            );
            assert_eq!(
                masked(&sparse.stats),
                masked(&dense.stats),
                "{label} / {}: NetStats diverged between schedulers",
                sparse.name
            );
            assert_eq!(sparse.matching, dense_par.matching, "{label}");
            assert_eq!(masked(&sparse.stats), masked(&dense_par.stats), "{label}");
        }
    }
}

/// The hub fixture: the scheduler/executor matrix on a Chung–Lu
/// power-law graph, whose node 0 is a heavy hub. This is the workload
/// the degree-weighted chunker exists for — contiguous equal-count
/// chunks would put the hub's whole port range in one worker — and the
/// matrix asserts that chunking, the hybrid judge, and forced
/// multi-worker execution all stay bit-identical to the sequential
/// sparse reference: same matching, same `NetStats` minus the
/// sched_overhead/timings exemptions.
#[test]
fn chung_lu_hub_scheduler_matrix_bit_identical() {
    let _serial = HOOK_LOCK.lock().unwrap();
    let g0 = distributed_matching::dgraph::generators::zoo::chung_lu(40, 2.2, 4.0, 9);
    let max_deg = (0..40).map(|v| g0.degree(v)).max().unwrap_or(0);
    assert!(
        max_deg >= 10,
        "fixture lost its hub (max degree {max_deg}); pick another seed"
    );
    let algs = [
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::LocalDominant,
        },
    ];
    // {seq, 2, 8 threads} × {sparse, dense, hybrid}; threaded runs are
    // forced so the partitioners really fan out on a 40-node fixture
    // (the cost model would otherwise route them sequentially).
    type SchedFn = fn(ExecCfg) -> ExecCfg;
    let execs = |sched_of: SchedFn| {
        [
            sched_of(ExecCfg::sequential()),
            sched_of(ExecCfg::parallel(2)).forced(),
            sched_of(ExecCfg::parallel(8)).forced(),
        ]
    };
    let scheds: [(&str, SchedFn); 3] = [
        ("sparse", |c| c),
        ("dense", ExecCfg::dense),
        ("hybrid", ExecCfg::hybrid),
    ];
    for alg in algs {
        let g = if weighted_input(&alg) {
            apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
        } else {
            g0.clone()
        };
        let reference = session_run(&g, None, alg, 77, ExecCfg::sequential());
        assert!(
            reference.matching.validate(&g).is_ok(),
            "{}",
            reference.name
        );
        for (sched_label, sched_of) in scheds {
            for (ti, cfg) in execs(sched_of).into_iter().enumerate() {
                let r = session_run(&g, None, alg, 77, cfg);
                let label = format!(
                    "chung-lu hub / {} / {sched_label} / exec {ti}",
                    reference.name
                );
                assert_eq!(reference.matching, r.matching, "{label}: matching diverged");
                assert_eq!(
                    masked(&reference.stats),
                    masked(&r.stats),
                    "{label}: NetStats diverged"
                );
            }
        }
    }
}

/// The flight recorder observes, never steers: running with a `dobs`
/// trace session installed must be bit-identical to running without
/// one — the *full* `NetStats` (no masking at all: both runs use the
/// same `ExecCfg`, so even the documented observability exemptions,
/// `sched_overhead` and the `timings` registry, must agree) and the
/// matching — across {sequential, 8 forced threads} × {sparse, dense,
/// hybrid}. The traced runs must also actually record events, so the
/// equality is not vacuous.
#[test]
fn traced_vs_untraced_bit_identical() {
    let _serial = HOOK_LOCK.lock().unwrap();
    let g0 = gnp(30, 0.18, 21);
    let algs = [
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::LocalDominant,
        },
    ];
    type SchedFn = fn(ExecCfg) -> ExecCfg;
    let scheds: [(&str, SchedFn); 3] = [
        ("sparse", |c| c),
        ("dense", ExecCfg::dense),
        ("hybrid", ExecCfg::hybrid),
    ];
    let mut events_total = 0u64;
    for alg in algs {
        let g = if weighted_input(&alg) {
            apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
        } else {
            g0.clone()
        };
        for (sched_label, sched_of) in scheds {
            for cfg in [
                sched_of(ExecCfg::sequential()),
                sched_of(ExecCfg::parallel(8)).forced(),
            ] {
                let plain = session_run(&g, None, alg, 55, cfg);
                let session = distributed_matching::dobs::TraceSession::start(1 << 16);
                let traced = session_run(&g, None, alg, 55, cfg);
                let rec = session.finish();
                events_total += rec.recorded();
                let label = format!(
                    "{} / {sched_label} / {} threads{}",
                    plain.name,
                    cfg.threads,
                    if cfg.force_parallel { " (forced)" } else { "" }
                );
                assert_eq!(
                    plain.matching, traced.matching,
                    "{label}: tracing changed the matching"
                );
                assert_eq!(
                    plain.stats, traced.stats,
                    "{label}: tracing changed the NetStats"
                );
                assert!(
                    rec.recorded() > 0,
                    "{label}: traced run recorded nothing — the identity check is vacuous"
                );
            }
        }
    }
    assert!(events_total > 0);
}

#[test]
fn dense_vs_sparse_bit_identical_under_loss() {
    let _serial = HOOK_LOCK.lock().unwrap();
    let hook = HookGuard::silence();
    let mut outcomes = Vec::new();
    for (label, g0, sides) in topologies() {
        for alg in algorithms() {
            if !applicable(&alg, &sides) {
                continue;
            }
            let g = if weighted_input(&alg) {
                apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
            } else {
                g0.clone()
            };
            let sides_ref = sides.as_deref();
            let lossy = |dense: bool| {
                let cfg = ExecCfg {
                    loss: 0.1,
                    ..ExecCfg::sequential()
                };
                if dense {
                    cfg.dense()
                } else {
                    cfg
                }
            };
            let sparse = run_caught(&g, sides_ref, alg, 13, lossy(false));
            let dense = run_caught(&g, sides_ref, alg, 13, lossy(true));
            outcomes.push((label.clone(), alg, sparse, dense));
        }
    }
    drop(hook);
    for (label, alg, sparse, dense) in outcomes {
        assert_eq!(
            sparse.is_ok(),
            dense.is_ok(),
            "{label} / {alg:?}: one scheduler panicked, the other did not"
        );
        if let (Ok(s), Ok(d)) = (sparse, dense) {
            assert_eq!(s.0, d.0, "{label} / {alg:?}: lossy matchings diverged");
            assert_eq!(
                masked(&s.1),
                masked(&d.1),
                "{label} / {alg:?}: lossy NetStats diverged"
            );
        }
    }
}

#[test]
fn sequential_vs_parallel_bit_identical_under_loss() {
    // Under 10% message loss some algorithms legitimately trip internal
    // invariants (a lost token breaks an augmentation); the contract
    // here is *determinism*: both executors must do exactly the same
    // thing — succeed with identical results, or fail identically.
    let _serial = HOOK_LOCK.lock().unwrap();
    let hook = HookGuard::silence();
    let mut outcomes = Vec::new();
    for (label, g0, sides) in topologies() {
        for alg in algorithms() {
            if !applicable(&alg, &sides) {
                continue;
            }
            let g = if weighted_input(&alg) {
                apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
            } else {
                g0.clone()
            };
            let sides_ref = sides.as_deref();
            let lossy = |threads| ExecCfg {
                loss: 0.1,
                ..ExecCfg::parallel(threads)
            };
            let seq = run_caught(&g, sides_ref, alg, 7, lossy(1));
            let par = run_caught(&g, sides_ref, alg, 7, lossy(8));
            outcomes.push((label.clone(), alg, seq, par));
        }
    }
    drop(hook);
    let mut succeeded = 0usize;
    for (label, alg, seq, par) in outcomes {
        assert_eq!(
            seq.is_ok(),
            par.is_ok(),
            "{label} / {alg:?}: one executor panicked, the other did not"
        );
        if let (Ok(s), Ok(p)) = (seq, par) {
            assert_eq!(s.0, p.0, "{label} / {alg:?}: lossy matchings diverged");
            assert_eq!(s.1, p.1, "{label} / {alg:?}: lossy NetStats diverged");
            succeeded += 1;
        }
    }
    // The suite is vacuous if loss makes everything panic; Israeli–Itai
    // at least is loss-tolerant by design.
    assert!(succeeded >= 5, "only {succeeded} lossy runs completed");
}

/// The adversary-plane determinism gate: same seed + same `FaultPlan`
/// ⇒ bit-identical matchings and (masked) `NetStats` across every
/// executor ({seq, 2, 8 threads}) × every scheduler ({sparse, dense,
/// hybrid}), for representative algorithms and for every fault class —
/// drop, delay+stall, and crash+burst+budget. None of these plans may
/// panic: the per-algorithm bounded-run extraction is part of the
/// contract.
#[test]
fn adversary_plans_bit_identical_across_executors_and_schedulers() {
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("drop-0.2", FaultPlan::drop(0.2)),
        (
            "delay-3+stall-0.15",
            FaultPlan::NONE.with_delay(3).with_stall(0.15),
        ),
        (
            "crash+burst+budget",
            FaultPlan::NONE
                .with_crash(0.02, 5)
                .with_burst(0.1, 0.5)
                .with_budget(Budget::Bits(96)),
        ),
    ];
    let (gb, sides) = bipartite_gnp(10, 11, 0.25, 4);
    let cases: Vec<(String, Graph, Option<Vec<bool>>, Algorithm)> = vec![
        (
            "gnp/ii".into(),
            gnp(22, 0.18, 3),
            None,
            Algorithm::IsraeliItai,
        ),
        (
            "gnp/generic".into(),
            gnp(22, 0.18, 3),
            None,
            Algorithm::Generic { k: 2 },
        ),
        (
            "bipartite/k2".into(),
            gb,
            Some(sides),
            Algorithm::Bipartite { k: 2 },
        ),
        (
            "gnp/delta-mwm".into(),
            apply_weights(&gnp(22, 0.18, 3), WeightModel::Uniform(0.5, 4.0), 11),
            None,
            Algorithm::DeltaMwm {
                mwm_box: MwmBox::LocalDominant,
            },
        ),
    ];
    for (plan_label, plan) in &plans {
        for (label, g, sides, alg) in &cases {
            let mk = |threads: usize, sched: usize| {
                let cfg = ExecCfg::parallel(threads).with_faults(*plan);
                match sched {
                    0 => cfg,
                    1 => cfg.dense(),
                    _ => cfg.hybrid(),
                }
            };
            let base = session_run(g, sides.as_deref(), *alg, 29, mk(1, 0));
            let base_edges = base.matching.edge_ids(g);
            let base_stats = masked(&base.stats);
            for threads in [1usize, 2, 8] {
                for sched in [0usize, 1, 2] {
                    if (threads, sched) == (1, 0) {
                        continue;
                    }
                    let r = session_run(g, sides.as_deref(), *alg, 29, mk(threads, sched));
                    assert_eq!(
                        r.matching.edge_ids(g),
                        base_edges,
                        "{label} / {plan_label} / {threads}t sched{sched}: matching diverged"
                    );
                    assert_eq!(
                        masked(&r.stats),
                        base_stats,
                        "{label} / {plan_label} / {threads}t sched{sched}: NetStats diverged"
                    );
                }
            }
        }
    }
}

/// The legacy `ExecCfg::loss` knob and an explicit
/// `FaultPlan::drop(p)` are the *same* plan (`effective_faults`
/// resolves both to one drop probability on one RNG stream), so
/// loss-seeded runs reproduce bit-for-bit through the adversary plane.
#[test]
fn legacy_loss_knob_is_bit_identical_to_adversary_drop_plan() {
    let _serial = HOOK_LOCK.lock().unwrap();
    let hook = HookGuard::silence();
    let mut outcomes = Vec::new();
    for (label, g0, sides) in topologies() {
        for alg in algorithms() {
            if !applicable(&alg, &sides) {
                continue;
            }
            let g = if weighted_input(&alg) {
                apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), 11)
            } else {
                g0.clone()
            };
            let sides_ref = sides.as_deref();
            let legacy = ExecCfg {
                loss: 0.1,
                ..ExecCfg::sequential()
            };
            let planned = ExecCfg::sequential().with_faults(FaultPlan::drop(0.1));
            let a = run_caught(&g, sides_ref, alg, 13, legacy);
            let b = run_caught(&g, sides_ref, alg, 13, planned);
            outcomes.push((label.clone(), alg, a, b));
        }
    }
    drop(hook);
    for (label, alg, a, b) in outcomes {
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "{label} / {alg:?}: legacy loss and drop plan disagreed on panicking"
        );
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a.0, b.0, "{label} / {alg:?}: matchings diverged");
            assert_eq!(a.1, b.1, "{label} / {alg:?}: NetStats diverged");
        }
    }
}
