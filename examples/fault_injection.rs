//! Fault injection demo: what happens to Israeli–Itai when the
//! adversary plane breaks the paper's fault-free synchronous model.
//!
//! The example shows the separation the robustness suite verifies:
//! under any [`FaultPlan`] the protocol keeps *safety* (the returned
//! pairs always form a valid matching) while *liveness* (maximality,
//! size) degrades gracefully with the fault intensity. The last run is
//! traced through the observability plane, so the exported Chrome
//! trace carries per-fault instants (drop/delay/crash/rejoin) on the
//! adversary track — load `fault_injection.trace.json` at
//! <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use distributed_matching::dgraph::blossom;
use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dmatch::{Algorithm, Session};
use distributed_matching::dobs::TraceSession;
use distributed_matching::simnet::FaultPlan;

/// One adversarial session: the unified driver with `plan` installed.
fn run(g: &distributed_matching::dgraph::Graph, seed: u64, plan: FaultPlan) -> (usize, u64) {
    let r = Session::on(g)
        .algorithm(Algorithm::IsraeliItai)
        .seed(seed)
        .adversary(plan)
        .build()
        .run_to_completion();
    // Safety: whatever the adversary did, the agreed pairs validate.
    r.matching
        .validate(g)
        .expect("faults must never break safety");
    (r.matching.size(), r.stats.dropped)
}

fn main() {
    let g = gnp(300, 0.03, 5);
    let opt = blossom::max_matching(&g).size();
    println!(
        "graph: n = {}, m = {}; maximum matching = {opt}\n",
        g.n(),
        g.m()
    );

    // Fault-free reference: the matching quality the adversarial runs
    // below degrade from.
    let (base, _) = run(&g, 0, FaultPlan::NONE);
    println!(
        "fault-free session reference: {base} pairs ({:.1}% of opt)\n",
        100.0 * base as f64 / opt as f64
    );
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "loss", "agreed pairs", "% of opt", "dropped msgs"
    );
    for &loss in &[0.0, 0.05, 0.1, 0.25, 0.5, 0.75] {
        let mut pairs = 0usize;
        let mut dropped = 0u64;
        let runs = 5;
        for seed in 0..runs {
            let (size, d) = run(&g, seed, FaultPlan::drop(loss));
            pairs += size;
            dropped += d;
        }
        println!(
            "{:>10.2} {:>14.1} {:>12.1} {:>12}",
            loss,
            pairs as f64 / runs as f64,
            100.0 * pairs as f64 / (runs as usize * opt) as f64,
            dropped / runs
        );
    }

    // Other fault classes from the same plane, one line each.
    println!("\n{:>22} {:>14} {:>12}", "plan", "agreed pairs", "% of opt");
    for (label, plan) in [
        ("delay <= 3 rounds", FaultPlan::NONE.with_delay(3)),
        ("crash 2%, rejoin 5", FaultPlan::NONE.with_crash(0.02, 5)),
        (
            "combined storm",
            FaultPlan::drop(0.1).with_delay(2).with_crash(0.01, 4),
        ),
    ] {
        let (size, _) = run(&g, 1, plan);
        println!(
            "{label:>22} {size:>14} {:>12.1}",
            100.0 * size as f64 / opt as f64
        );
    }

    // Traced adversarial run: the flight recorder captures every fault
    // the plane injects as an instant on the adversary track.
    let session = TraceSession::start(65536);
    let _ = run(&g, 2, FaultPlan::drop(0.2).with_crash(0.02, 5));
    let rec = session.finish();
    let trace = distributed_matching::dobs::export::chrome_trace(&rec);
    std::fs::write("fault_injection.trace.json", &trace).expect("write trace");
    println!(
        "\nwrote fault_injection.trace.json ({} events) — the adversary track\n\
         shows each drop/crash/rejoin instant next to the round spans",
        rec.len()
    );

    println!(
        "\nReading: safety never breaks (every run produced a valid matching);\n\
         the matched fraction decays smoothly as faults intensify — and the\n\
         paper's fault-free guarantees (the session reference above) are\n\
         recovered under FaultPlan::NONE. All runs route through the same\n\
         Session surface; the adversary plane is one .adversary(plan) away."
    );
}
