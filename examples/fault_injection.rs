//! Fault injection demo: what happens to Israeli–Itai when the network
//! drops messages.
//!
//! The paper's model is synchronous and fault-free. This example shows
//! the separation the robustness tests verify: under message loss the
//! protocol keeps *safety* (agreed pairs always form a valid matching)
//! while *liveness* (maximality, size) degrades gracefully with the
//! loss rate.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use distributed_matching::dgraph::blossom;
use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dmatch::{israeli_itai, Algorithm, Session};

fn main() {
    let g = gnp(300, 0.03, 5);
    let opt = blossom::max_matching(&g).size();
    println!(
        "graph: n = {}, m = {}; maximum matching = {opt}\n",
        g.n(),
        g.m()
    );

    // Fault-free reference through the unified driver: this is the
    // matching quality the lossy runs below degrade from.
    let r = Session::on(&g)
        .algorithm(Algorithm::IsraeliItai)
        .seed(0)
        .build()
        .run_to_completion();
    println!(
        "fault-free session reference: {} pairs ({:.1}% of opt)\n",
        r.matching.size(),
        100.0 * r.matching.size() as f64 / opt as f64
    );
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "loss", "agreed pairs", "% of opt", "dropped msgs"
    );
    for &loss in &[0.0, 0.05, 0.1, 0.25, 0.5, 0.75] {
        let mut pairs = 0usize;
        let mut dropped = 0u64;
        let runs = 5;
        for seed in 0..runs {
            let (m, d) = israeli_itai::lossy_matching(&g, seed, 120, loss);
            // Validity of the agreed matching is asserted inside; this
            // is the safety property.
            pairs += m.size();
            dropped += d;
        }
        println!(
            "{:>10.2} {:>14.1} {:>12.1} {:>12}",
            loss,
            pairs as f64 / runs as f64,
            100.0 * pairs as f64 / (runs as usize * opt) as f64,
            dropped / runs
        );
    }
    println!(
        "\nReading: safety never breaks (every run produced a valid matching);\n\
         the matched fraction decays smoothly as loss increases — and the paper's\n\
         fault-free guarantees (the session reference above) are recovered at loss = 0.\n\
         (The lossy rows use israeli_itai::lossy_matching — a fixed-round agreed-pairs\n\
         regime below the Session surface, which models runs-to-completion.)"
    );
}
