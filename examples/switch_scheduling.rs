//! Switch scheduling — the application from the paper's introduction.
//!
//! An 8-port input-queued switch under skewed ("diagonal") traffic at
//! 90% load: PIM and iSLIP (the industrial descendants of
//! Israeli–Itai's maximal matching) against the paper's near-maximum
//! bipartite matching used as the crossbar scheduler.
//!
//! ```sh
//! cargo run --release --example switch_scheduling
//! ```

use distributed_matching::switchsim::{SchedulerKind, SimConfig, Simulator, TrafficModel};

fn main() {
    let cfg = SimConfig {
        ports: 8,
        cycles: 4000,
        warmup: 800,
        traffic: TrafficModel::Diagonal { load: 0.9 },
        seed: 2024,
    };
    println!(
        "8-port input-queued switch, diagonal traffic at ρ = 0.9, {} cycles\n",
        cfg.cycles
    );
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>14}",
        "scheduler", "delivered", "ratio", "mean delay", "mean backlog"
    );
    for kind in [
        SchedulerKind::Pim { iterations: 1 },
        SchedulerKind::Islip { iterations: 1 },
        SchedulerKind::Islip { iterations: 3 },
        SchedulerKind::DistMaximal,
        SchedulerKind::LpsBipartite { k: 2 },
        SchedulerKind::LpsWeighted { epsilon: 0.2 },
        SchedulerKind::MaxWeight,
    ] {
        let r = Simulator::new(cfg, kind).run();
        println!(
            "{:<18} {:>10} {:>12.3} {:>12.2} {:>14.1}",
            r.scheduler,
            r.delivered,
            r.delivery_ratio(),
            r.mean_delay,
            r.mean_backlog
        );
    }
    println!(
        "\nReading: a bigger matching per cycle means more cells cross the fabric.\n\
         The (1-1/k)-MCM and (½-ε)-MWM schedulers (Theorems 3.8 / 4.5) close most of\n\
         the gap to the centralized max-weight oracle while remaining distributed."
    );
}
