//! Weighted matching as a decentralized assignment market.
//!
//! A classic use of `(½-ε)`-MWM: `n` workers and `n` tasks, each
//! worker values a handful of tasks (sparse bipartite utilities), and
//! no central coordinator exists. Algorithm 5 computes an assignment
//! whose utility provably exceeds `(½-ε)` of the optimum while
//! exchanging only small messages between acquainted pairs.
//!
//! ```sh
//! cargo run --release --example weighted_auction
//! ```

use distributed_matching::dgraph::generators::random::bipartite_gnp;
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dgraph::hungarian;
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{Algorithm, Session};

fn main() {
    let workers = 50;
    let tasks = 50;
    // Each worker knows ~6 tasks; utilities are heavy-tailed (a few
    // dream jobs, many mediocre fits).
    let (g0, sides) = bipartite_gnp(workers, tasks, 6.0 / tasks as f64, 3);
    let g = apply_weights(
        &g0,
        WeightModel::PowerLaw {
            lo: 1.0,
            alpha: 1.5,
        },
        4,
    );
    println!(
        "market: {workers} workers × {tasks} tasks, {} utility edges\n",
        g.m()
    );

    // Centralized optimum (needs global knowledge — the thing we avoid).
    let opt = hungarian::max_weight_matching(&g, &sides);
    println!(
        "centralized optimum (Hungarian): total utility {:.2}",
        opt.weight(&g)
    );

    for eps in [0.3, 0.1, 0.02] {
        let mut session = Session::on(&g)
            .algorithm(Algorithm::Weighted {
                epsilon: eps,
                mwm_box: MwmBox::SeqClass,
            })
            .seed(99)
            .build();
        let r = session.run_to_completion();
        println!(
            "Algorithm 5, ε = {:<4}: utility {:>8.2} ({:>5.1}% of optimum, guarantee ≥ {:>4.1}%) — {} assignments, {} rounds, {} iterations",
            eps,
            r.matching.weight(&g),
            100.0 * r.matching.weight(&g) / opt.weight(&g),
            100.0 * (0.5 - eps),
            r.matching.size(),
            r.stats.rounds,
            session.phase_log().len(),
        );
    }

    // Show a few concrete assignments.
    let r = Session::on(&g)
        .algorithm(Algorithm::Weighted {
            epsilon: 0.1,
            mwm_box: MwmBox::SeqClass,
        })
        .seed(99)
        .build()
        .run_to_completion();
    println!("\nsample assignments (worker → task @ utility):");
    let mut shown = 0;
    for w in 0..workers as u32 {
        if let Some(t) = r.matching.mate(w) {
            let e = g.edge_between(w, t).unwrap();
            println!(
                "  worker {:>2} → task {:>2}  @ {:.2}",
                w,
                t - workers as u32,
                g.weight(e)
            );
            shown += 1;
            if shown == 8 {
                break;
            }
        }
    }
    println!(
        "\nEvery step was message-passing between worker/task pairs that share an edge —\n\
         no auctioneer, no global state, O(log n)-bit messages."
    );
}
