//! Quickstart: compute approximate matchings with every algorithm of
//! the paper on one random graph, through the unified `Session` API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dgraph::generators::weights::{apply_weights, WeightModel};
use distributed_matching::dmatch::weighted::MwmBox;
use distributed_matching::dmatch::{runner, Algorithm, ConvergenceCurve, RunReport, Session};

fn main() {
    // A sparse random graph on 200 nodes (expected degree 5).
    let n = 200;
    let g = gnp(n, 5.0 / n as f64, 42);
    println!(
        "graph: n = {}, m = {}, Δ = {}\n",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Exact optimum (Edmonds blossom) for reference.
    let opt = distributed_matching::dgraph::blossom::max_matching(&g).size();
    println!("maximum matching (blossom, centralized): {opt} edges\n");

    // Every run is a Session: pick an algorithm, a seed, build, run.
    // 1. The classical baseline: Israeli–Itai maximal matching.
    let r = Session::on(&g)
        .algorithm(Algorithm::IsraeliItai)
        .seed(7)
        .build()
        .run_to_completion();
    report(&r, opt);

    // 2. The paper's generic (1-ε)-MCM (Theorem 3.1), k = 2 → ratio ≥ 2/3.
    //    A ConvergenceCurve observer records the size after each phase.
    let curve = ConvergenceCurve::new();
    let r = Session::on(&g)
        .algorithm(Algorithm::Generic { k: 2 })
        .seed(7)
        .observe(curve.clone())
        .build()
        .run_to_completion();
    report(&r, opt);
    let trail: Vec<String> = curve
        .points()
        .iter()
        .map(|p| format!("{} edges @ round {}", p.matching_size, p.round))
        .collect();
    println!("    per-phase trail: {}", trail.join(" → "));

    // 3. General graphs with small messages (Theorem 3.11), k = 3 → ratio ≥ 2/3 whp.
    let r = Session::on(&g)
        .algorithm(Algorithm::General {
            k: 3,
            early_stop: Some(20),
        })
        .seed(7)
        .build()
        .run_to_completion();
    report(&r, opt);

    // 4. Weighted matching (Theorem 4.5): (½-ε)-MWM on random weights.
    let wg = apply_weights(&g, WeightModel::Exponential(2.0), 9);
    let r = Session::on(&wg)
        .algorithm(Algorithm::Weighted {
            epsilon: 0.1,
            mwm_box: MwmBox::SeqClass,
        })
        .seed(7)
        .build()
        .run_to_completion();
    let ub = runner::mwm_reference(&wg, None);
    println!(
        "{:<28} weight {:>8.2} (≥ {:.0}% of the exact/bound {:.2})   rounds {:>5}  maxmsg {:>4} bits",
        r.name,
        r.matching.weight(&wg),
        100.0 * r.matching.weight(&wg) / ub,
        ub,
        r.stats.rounds,
        r.stats.max_msg_bits
    );

    // The session validates every matching; so can you:
    assert!(r.matching.validate(&wg).is_ok());
    println!("\nall matchings validated ✓");
}

fn report(r: &RunReport, opt: usize) {
    println!(
        "{:<28} {:>4} edges ({:>5.1}% of optimum)   rounds {:>5}  messages {:>7}  maxmsg {:>6} bits",
        r.name,
        r.matching.size(),
        100.0 * r.matching.size() as f64 / opt.max(1) as f64,
        r.stats.rounds,
        r.stats.messages,
        r.stats.max_msg_bits
    );
}
