//! Peer-to-peer conversation pairing on a general (non-bipartite)
//! overlay.
//!
//! The paper's opening motivation: *"a node may be engaged in a
//! 'conversation' with only one other node at a time, and having a
//! large cardinality matching increases overall communication
//! throughput."* Overlay networks are not bipartite, so this exercises
//! Algorithm 4 (Theorem 3.11): random red/blue bipartization plus the
//! small-message bipartite machinery.
//!
//! ```sh
//! cargo run --release --example p2p_pairing
//! ```

use distributed_matching::dgraph::blossom;
use distributed_matching::dgraph::generators::random::barabasi_albert;
use distributed_matching::dmatch::{Algorithm, Session};

fn main() {
    // A scale-free overlay (Barabási–Albert): hubs plus a long tail —
    // the hard case for pairing, because hubs exhaust their neighbors.
    let g = barabasi_albert(400, 2, 11);
    println!(
        "overlay: n = {}, m = {}, Δ = {} (scale-free, non-bipartite)\n",
        g.n(),
        g.m(),
        g.max_degree()
    );
    let opt = blossom::max_matching(&g).size();
    println!("maximum pairing (centralized blossom): {opt} conversations\n");

    // Baseline: Israeli–Itai maximal matching — the 1986 answer.
    let r = Session::on(&g)
        .algorithm(Algorithm::IsraeliItai)
        .seed(5)
        .build()
        .run_to_completion();
    println!(
        "Israeli–Itai  (½ guarantee):   {:>3} conversations ({:>5.1}% of optimum), {:>4} rounds",
        r.matching.size(),
        100.0 * r.matching.size() as f64 / opt as f64,
        r.stats.rounds
    );

    // The paper's Algorithm 4 at increasing quality targets.
    for k in [2usize, 3, 4] {
        let mut session = Session::on(&g)
            .algorithm(Algorithm::General {
                k,
                early_stop: Some(25),
            })
            .seed(13 + k as u64)
            .build();
        let r = session.run_to_completion();
        println!(
            "Algorithm 4   (1-1/{k} whp):   {:>3} conversations ({:>5.1}% of optimum), {:>4} rounds, {} sampling iterations",
            r.matching.size(),
            100.0 * r.matching.size() as f64 / opt as f64,
            r.stats.rounds,
            session.phase_log().len(),
        );
        assert!(r.matching.validate(&g).is_ok());
    }
    println!(
        "\nEach extra unit of k squeezes out longer augmenting paths (length ≤ 2k-1),\n\
         trading rounds for conversations — with messages that never exceed ~100 bits."
    );
}
