//! Run the paper's algorithms on a DIMACS-format graph file.
//!
//! ```sh
//! cargo run --release --example dimacs_tool -- path/to/graph.dimacs [k]
//! ```
//!
//! With no argument, a demo graph is generated, written to a temp file,
//! and read back — exercising the full I/O round trip.

use distributed_matching::dgraph::{blossom, io};
use distributed_matching::dmatch::{Algorithm, Session};
use std::io::Write as _;

fn main() {
    let mut args = std::env::args().skip(1);
    let (text, origin) = match args.next() {
        Some(path) => (
            std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
            path,
        ),
        None => {
            // Demo: generate, serialize, and re-read a random graph.
            let g = distributed_matching::dgraph::generators::random::gnp(120, 0.04, 7);
            let text = io::to_dimacs(&g);
            let mut f = std::env::temp_dir();
            f.push("distributed-matching-demo.dimacs");
            let path = f.to_string_lossy().into_owned();
            let mut file = std::fs::File::create(&f).expect("temp file");
            file.write_all(text.as_bytes()).expect("write demo graph");
            println!("(no input given: wrote a demo graph to {path})\n");
            (text, path)
        }
    };
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let g = match io::from_dimacs(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("parse error in {origin}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{origin}: n = {}, m = {}, Δ = {}, components = {}",
        g.n(),
        g.m(),
        g.max_degree(),
        g.components()
    );

    let opt = blossom::max_matching(&g).size();
    println!("maximum matching (centralized blossom): {opt}\n");

    let r = Session::on(&g)
        .algorithm(Algorithm::IsraeliItai)
        .seed(1)
        .build()
        .run_to_completion();
    println!(
        "Israeli–Itai:      {:>4} edges ({:>5.1}%)   {:>5} rounds",
        r.matching.size(),
        100.0 * r.matching.size() as f64 / opt.max(1) as f64,
        r.stats.rounds
    );
    let r = Session::on(&g)
        .algorithm(Algorithm::General {
            k,
            early_stop: Some(25),
        })
        .seed(2)
        .build()
        .run_to_completion();
    println!(
        "Algorithm 4 (k={k}): {:>4} edges ({:>5.1}%)   {:>5} rounds   guarantee ≥ {:.1}% whp",
        r.matching.size(),
        100.0 * r.matching.size() as f64 / opt.max(1) as f64,
        r.stats.rounds,
        100.0 * (1.0 - 1.0 / k as f64),
    );
}
