//! Dynamic-network quickstart: a matching that survives churn.
//!
//! ```bash
//! cargo run --release --example dynamic_churn
//! ```
//!
//! Builds a random network, bootstraps a maximal matching, then churns
//! 5% of the edges every epoch while the `dchurn` engine repairs the
//! matching incrementally — printing what each epoch's repair cost
//! compared to recomputing from scratch.

use distributed_matching::dchurn::{ChurnModel, DynEngine, RepairAlgo};
use distributed_matching::dgraph::generators::random::gnp;
use distributed_matching::dmatch::{Algorithm, RewirePatch, Session};

fn main() {
    let n = 1000;
    let g = gnp(n, 8.0 / n as f64, 7);
    println!(
        "network: {} nodes, {} edges; churn: 5% of edges per epoch\n",
        g.n(),
        g.m()
    );

    let mut eng = DynEngine::new(
        g,
        ChurnModel::EdgeChurn { rate: 0.05 },
        RepairAlgo::IncrementalMaximal,
        42,
    );
    let boot = eng.bootstrap().clone();
    println!(
        "bootstrap: |M| = {} in {} rounds / {} messages\n",
        boot.matching_size, boot.rounds, boot.messages
    );

    println!("epoch  ±edges  freed  woken  radius  repair rnds/msgs  recompute rnds/msgs");
    for _ in 0..10 {
        let rep = eng.step_epoch().clone();
        let (_, recompute) = eng.recompute_baseline();
        assert!(rep.maximal, "repair restores maximality every epoch");
        println!(
            "{:>5}  {:>6}  {:>5}  {:>5}  {:>6}  {:>7}/{:<8}  {:>9}/{:<8}",
            rep.epoch,
            rep.added + rep.removed,
            rep.invalidated,
            rep.woken,
            rep.locality_radius.map_or("-".into(), |r| r.to_string()),
            rep.rounds,
            rep.messages,
            recompute.rounds,
            recompute.messages,
        );
    }
    println!(
        "\nfinal matching: |M| = {} (valid: {}, maximal: {})",
        eng.matching().size(),
        eng.matching().validate(eng.graph()).is_ok(),
        eng.matching().is_maximal(eng.graph()),
    );

    // The same epoch loop, hand-driven through the Session API (how the
    // engine's generic arm works internally): complete a run, then
    // resume it with a rewire patch and pay only for the damage ball.
    println!("\n-- hand-driven Session repair (generic k=2, one lost edge) --");
    let g = gnp(400, 8.0 / 400.0, 11);
    let mut session = Session::on(&g)
        .algorithm(Algorithm::Generic { k: 2 })
        .seed(3)
        .build();
    let boot = session.run_to_completion();
    let full_rounds = boot.stats.rounds;
    let e = boot.matching.edge_ids(&g)[0];
    let (a, b) = g.endpoints(e);
    let (g2, _) = g.edge_subgraph(|x| x != e);
    session.resume_after_rewire(RewirePatch::new(g2, vec![a, b]));
    let repaired = session.run_to_completion();
    println!(
        "bootstrap: {} rounds; repair after losing ({a},{b}): {} rounds, |M| = {}",
        full_rounds,
        repaired.stats.rounds - full_rounds,
        repaired.matching.size(),
    );
}
